/// \file bench_fig12_building_types.cpp
/// Reproduces paper Figure 12: FIS-ONE's performance per building type
/// (floor count 3–10, both corpora combined). The paper's shape: uniformly
/// high scores with mildly larger fluctuations for tall buildings (fewer
/// of them in the corpus → larger sample variance).

#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
    using namespace fisone;
    const util::cli_args args(argc, argv);
    // Default to a corpus large enough that every floor count appears.
    const auto buildings = static_cast<std::size_t>(args.get_int("buildings", 12));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 240));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    std::cerr << "Synthesising corpora (" << buildings << " buildings + 3 malls)...\n";
    const data::corpus microsoft = sim::make_microsoft_corpus(buildings, samples, seed);
    const data::corpus ours = sim::make_malls_corpus(samples, seed + 1);

    std::map<std::size_t, bench::aggregate> by_floors;
    std::size_t index = 0;
    for (const data::corpus* corpus : {&microsoft, &ours}) {
        for (const data::building& b : corpus->buildings) {
            const std::uint64_t bseed = 7919 * (++index);
            core::fis_one_config cfg;
            cfg.gnn.seed = bseed;
            cfg.seed = bseed;
            const core::fis_one_result r = core::fis_one(cfg).run(b);
            by_floors[b.num_floors].add(r.ari, r.nmi, r.edit_distance);
            std::cerr << b.name << " (floors=" << b.num_floors << ") ARI=" << r.ari << "\n";
        }
    }

    std::cout << "\nFigure 12 — FIS-ONE by building floor count (two datasets combined), "
                 "mean(std)\n\n";
    util::table_printer table;
    table.header({"floors", "buildings", "ARI", "NMI", "Edit Distance"});
    for (auto& [floors, agg] : by_floors) {
        table.row({std::to_string(floors), std::to_string(agg.ari.count()),
                   util::table_printer::mean_std(agg.ari.mean(), agg.ari.stddev()),
                   util::table_printer::mean_std(agg.nmi.mean(), agg.nmi.stddev()),
                   util::table_printer::mean_std(agg.edit.mean(), agg.edit.stddev())});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape check: consistently high values for all floor counts, with\n"
                 "larger fluctuation (std) where few buildings of that height exist.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig12_building_types: " << e.what() << '\n';
    return EXIT_FAILURE;
}
