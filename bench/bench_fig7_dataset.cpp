/// \file bench_fig7_dataset.cpp
/// Reproduces paper Figure 7: the distribution of buildings by floor count
/// across the two combined corpora (Microsoft-like + malls). The paper's
/// shape is a decaying histogram over 3–10 floors, dominated by low-rise
/// buildings, with the malls adding two 5-floor and one 7-floor building.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <vector>

#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) try {
    const fisone::util::cli_args args(argc, argv);
    // Figure 7 is a dataset statistic; default to the paper's full scale.
    const auto n = static_cast<std::size_t>(args.get_int("buildings", 152));

    const auto floors = fisone::sim::microsoft_floor_counts(n);
    std::vector<std::size_t> counts(11, 0);
    for (const std::size_t f : floors) ++counts[f];
    // The malls corpus: two 5-floor + one 7-floor building.
    counts[5] += 2;
    counts[7] += 1;

    std::cout << "Figure 7 — number of buildings by floor count (two datasets combined, "
              << (n + 3) << " buildings)\n\n";
    fisone::util::table_printer table;
    table.header({"floors", "buildings", "histogram"});
    for (std::size_t f = 3; f <= 10; ++f)
        table.row({std::to_string(f), std::to_string(counts[f]), std::string(counts[f], '#')});
    table.print(std::cout);

    std::cout << "\nPaper shape check: monotone-decaying, ~40 three-floor buildings at\n"
                 "full scale, a handful of 9-10 floor buildings in the tail.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig7_dataset: " << e.what() << '\n';
    return EXIT_FAILURE;
}
