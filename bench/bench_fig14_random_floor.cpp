/// \file bench_fig14_random_floor.cpp
/// Reproduces paper Figure 14 (§VI extension): floor identification when
/// the single labeled sample comes from a *random* floor rather than the
/// bottom one. Case-1 situations (middle floor of an odd building) are
/// excluded by redrawing, exactly as the paper's experiment restricts
/// itself to Case 2. Reported: overall edit distance for bottom vs random
/// (a) and the per-floor-count breakdown (b); the paper sees only ~3-7%
/// degradation.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace fisone;

/// Pick a random labeled sample whose floor is not the ambiguous middle.
void relabel_case2(data::building& b, util::rng& gen) {
    for (;;) {
        const int floor = sim::relabel_random_floor(b, gen);
        const bool middle =
            b.num_floors % 2 == 1 && floor == static_cast<int>(b.num_floors / 2);
        if (!middle) return;
    }
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto repeats = static_cast<std::size_t>(args.get_int("repeats", 2));
    auto corpora = bench::make_corpora(args);

    bench::aggregate bottom_overall, random_overall;
    std::map<std::size_t, bench::aggregate> bottom_by_floors, random_by_floors;

    std::size_t index = 0;
    for (data::corpus* corpus : {&corpora.microsoft, &corpora.ours}) {
        for (data::building& b : corpus->buildings) {
            const std::uint64_t bseed = 7919 * (++index);

            // --- bottom-floor protocol (FIS-ONE) ---
            core::fis_one_config cfg;
            cfg.gnn.seed = bseed;
            cfg.seed = bseed;
            const auto r_bottom = core::fis_one(cfg).run(b);
            bottom_overall.add(r_bottom.ari, r_bottom.nmi, r_bottom.edit_distance);
            bottom_by_floors[b.num_floors].add(r_bottom.ari, r_bottom.nmi,
                                               r_bottom.edit_distance);

            // --- random-floor protocol, repeated (paper: 10 trials) ---
            util::rng gen(bseed ^ 0xabcdef);
            core::fis_one_config rcfg = cfg;
            rcfg.label = core::label_mode::arbitrary_floor;
            for (std::size_t t = 0; t < repeats; ++t) {
                data::building relabeled = b;
                relabel_case2(relabeled, gen);
                const auto r = core::fis_one(rcfg).run(relabeled);
                random_overall.add(r.ari, r.nmi, r.edit_distance);
                random_by_floors[b.num_floors].add(r.ari, r.nmi, r.edit_distance);
            }
            std::cerr << b.name << ": bottom edit=" << r_bottom.edit_distance << "\n";
        }
    }

    std::cout << "\nFigure 14(a) — overall edit distance, bottom vs random labeled floor\n\n";
    util::table_printer overall;
    overall.header({"protocol", "ARI", "NMI", "Edit Distance"});
    overall.row({"Bottom",
                 util::table_printer::mean_std(bottom_overall.ari.mean(),
                                               bottom_overall.ari.stddev()),
                 util::table_printer::mean_std(bottom_overall.nmi.mean(),
                                               bottom_overall.nmi.stddev()),
                 util::table_printer::mean_std(bottom_overall.edit.mean(),
                                               bottom_overall.edit.stddev())});
    overall.row({"Random",
                 util::table_printer::mean_std(random_overall.ari.mean(),
                                               random_overall.ari.stddev()),
                 util::table_printer::mean_std(random_overall.nmi.mean(),
                                               random_overall.nmi.stddev()),
                 util::table_printer::mean_std(random_overall.edit.mean(),
                                               random_overall.edit.stddev())});
    overall.print(std::cout);

    std::cout << "\nFigure 14(b) — edit distance by building floor count\n\n";
    util::table_printer by_floor;
    by_floor.header({"floors", "Bottom", "Random"});
    for (auto& [floors, agg] : bottom_by_floors) {
        by_floor.row({std::to_string(floors),
                      util::table_printer::mean_std(agg.edit.mean(), agg.edit.stddev()),
                      util::table_printer::mean_std(random_by_floors[floors].edit.mean(),
                                                    random_by_floors[floors].edit.stddev())});
    }
    by_floor.print(std::cout);

    std::cout << "\nPaper shape check: the random-floor protocol costs only a few percent\n"
                 "of edit distance overall (paper: ~7%), with no collapse at any height.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_fig14_random_floor: " << e.what() << '\n';
    return EXIT_FAILURE;
}
