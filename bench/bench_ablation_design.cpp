/// \file bench_ablation_design.cpp
/// Ablations of *our* design decisions (beyond the paper's own Fig. 8/9
/// ablations) — the choices DESIGN.md §4 calls out:
///  - trainable vs frozen base embeddings r⁰ (the paper only says "set r⁰
///    to a random vector"; we train them by default);
///  - the activation σ(·) of each hop (tanh default vs relu vs sigmoid);
///  - the random-walk co-occurrence window (1 / 2 / 4 on 5-step walks);
///  - the dendrogram-gap floor-count estimator (extension): distribution
///    of (estimated − true) across the corpus.
/// Run on a reduced corpus by default; flags as in the other benches.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace fisone;

void print_rows(const char* title,
                const std::vector<std::pair<std::string, bench::aggregate>>& rows) {
    util::table_printer table(title);
    table.header({"variant", "ARI", "NMI", "Edit Distance"});
    for (const auto& [name, agg] : rows)
        table.row({name, util::table_printer::mean_std(agg.ari.mean(), agg.ari.stddev()),
                   util::table_printer::mean_std(agg.nmi.mean(), agg.nmi.stddev()),
                   util::table_printer::mean_std(agg.edit.mean(), agg.edit.stddev())});
    table.print(std::cout);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto buildings = static_cast<std::size_t>(args.get_int("buildings", 6));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 150));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    std::cerr << "Synthesising corpus (" << buildings << " buildings)...\n";
    const data::corpus corpus = sim::make_microsoft_corpus(buildings, samples, seed);

    std::cout << "Design-choice ablations (Microsoft-like corpus), mean(std)\n\n";

    // --- base embeddings trainable vs frozen ---
    print_rows("base embeddings r⁰",
               {{"trainable (default)", bench::run_fis_one_over(
                                            corpus, [](core::fis_one_config&, std::uint64_t) {})},
                {"frozen random", bench::run_fis_one_over(
                                      corpus, [](core::fis_one_config& cfg, std::uint64_t) {
                                          cfg.gnn.train_base_embeddings = false;
                                      })}});

    // --- activation function ---
    print_rows(
        "hop activation σ(·)",
        {{"tanh (default)",
          bench::run_fis_one_over(corpus, [](core::fis_one_config&, std::uint64_t) {})},
         {"relu", bench::run_fis_one_over(corpus,
                                          [](core::fis_one_config& cfg, std::uint64_t) {
                                              cfg.gnn.act = gnn::activation::relu;
                                          })},
         {"sigmoid", bench::run_fis_one_over(corpus, [](core::fis_one_config& cfg,
                                                        std::uint64_t) {
              cfg.gnn.act = gnn::activation::sigmoid;
          })}});

    // --- walk co-occurrence window ---
    std::vector<std::pair<std::string, bench::aggregate>> window_rows;
    for (const std::size_t window : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        window_rows.emplace_back(
            "window " + std::to_string(window) + (window == 2 ? " (default)" : ""),
            bench::run_fis_one_over(corpus, [window](core::fis_one_config& cfg, std::uint64_t) {
                cfg.gnn.walks.window = window;
            }));
    }
    print_rows("random-walk co-occurrence window", window_rows);

    // --- floor-count estimator (extension) ---
    std::map<int, std::size_t> error_histogram;
    for (std::size_t bi = 0; bi < corpus.buildings.size(); ++bi) {
        const auto& b = corpus.buildings[bi];
        core::fis_one_config cfg;
        cfg.gnn.seed = 7919 * (bi + 1);
        cfg.seed = cfg.gnn.seed;
        cfg.estimate_floor_count = true;
        const auto r = core::fis_one(cfg).run(b);
        ++error_histogram[static_cast<int>(r.num_clusters) - static_cast<int>(b.num_floors)];
    }
    util::table_printer est("floor-count estimator: (estimated − true) histogram");
    est.header({"error", "buildings"});
    for (const auto& [err, count] : error_histogram)
        est.row({std::to_string(err), std::to_string(count)});
    est.print(std::cout);
    std::cout << "\n(The estimator is exact on separated data; on blended RF embeddings it\n"
                 "typically undershoots by 1-2 — see cluster/floor_count.hpp.)\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_ablation_design: " << e.what() << '\n';
    return EXIT_FAILURE;
}
