/// \file bench_trace_overhead.cpp
/// The observability cost contracts, measured. Two phases, same method:
/// interleave repetitions so thermal/frequency drift lands on both sides
/// equally, score each side by min-of-reps, exit non-zero when a
/// contract fails.
///
/// **Tracing phase** (loopback transport, cache off so every pass does
/// real pipeline work): tracing off vs tracing on.
///  - tracing on vs off produces byte-identical input-order NDJSON
///    re-exports (spans observe, never steer);
///  - the traced run's buildings/sec is within --max-overhead percent
///    (default 5) of the untraced run.
///
/// **Telemetry phase** (TCP transport): telemetry ticking disabled
/// (`telemetry_window_ms = 0`, no subscriber) vs a fast tick plus an
/// active `subscribe_stats` stream drinking every window.
///  - both runs produce byte-identical NDJSON (telemetry observes, never
///    steers);
///  - the instrumented run stays within --max-overhead percent;
///  - the stream actually pushed `stats_update` frames (the run measured
///    the real thing).
///
/// Run:  ./bench_trace_overhead [--quick] [--json] [--out BENCH_trace.json]
///                              [--buildings N] [--samples-per-floor M]
///                              [--reps R] [--max-overhead PCT] [--seed S]
///
///  --quick   CI-sized corpus (a few seconds total)
///  --json    write the JSON report (schema `fisone-bench-trace/v1`) to --out
///
/// The JSON schema is documented in README.md § Observability.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "bench_common.hpp"
#include "api/client.hpp"
#include "api/codec.hpp"
#include "api/server.hpp"
#include "net/socket.hpp"
#include "net/tcp_server.hpp"
#include "obs/trace.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone;
using clock_type = std::chrono::steady_clock;

std::vector<data::building> make_fleet(std::size_t count, std::size_t samples_per_floor,
                                       std::uint64_t seed) {
    std::vector<data::building> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "trace-fleet-" + std::to_string(i);
        spec.num_floors = 3 + i % 4;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

api::server_config make_server_config(std::uint64_t seed) {
    api::server_config cfg;
    cfg.service.pipeline.gnn.embedding_dim = 16;
    cfg.service.pipeline.gnn.epochs = 3;
    cfg.service.pipeline.gnn.walks.walks_per_node = 3;
    cfg.service.pipeline.num_threads = 1;  // building-level parallelism only
    cfg.service.seed = seed;
    cfg.enable_cache = false;  // every pass does the full pipeline
    return cfg;
}

/// One full pass: fresh server, submit the fleet, flush, re-export.
std::pair<std::string, double> run_pass(const std::vector<data::building>& fleet,
                                        std::uint64_t seed) {
    api::server srv(make_server_config(seed));
    api::client cli(srv);
    const clock_type::time_point start = clock_type::now();
    for (std::size_t i = 0; i < fleet.size(); ++i) static_cast<void>(cli.identify(fleet[i], i));
    static_cast<void>(cli.flush());
    const double wall = std::chrono::duration<double>(clock_type::now() - start).count();
    std::ostringstream out;
    service::export_input_order(out, cli.reports());
    return {out.str(), wall};
}

struct tcp_pass {
    std::string ndjson;
    double wall = 0.0;
    std::uint64_t stats_updates = 0;  ///< stats_update frames seen client-side
};

/// One full pass over the TCP front door: fresh server + fresh
/// `tcp_server` with the given telemetry window, optionally an active
/// `subscribe_stats` stream drinking every window while the fleet is
/// identified over a single framed connection. The wall clock covers the
/// identify workload only (send of first frame to last response), so the
/// off/on comparison isolates what ticking + pushing costs the serve path.
tcp_pass run_tcp_pass(const std::vector<data::building>& fleet, std::uint64_t seed,
                      std::uint32_t telemetry_window_ms, bool with_subscriber) {
    api::server srv(make_server_config(seed));
    net::tcp_server_config ncfg;
    ncfg.telemetry_window_ms = telemetry_window_ms;
    net::tcp_server front(net::make_backend(srv), ncfg);
    std::thread loop([&front] { front.run(); });

    tcp_pass out;
    std::atomic<std::uint64_t> updates{0};
    std::optional<net::frame_conn> sub;
    std::thread sub_reader;
    if (with_subscriber) {
        sub.emplace("127.0.0.1", front.port());
        api::subscribe_stats_request s;
        s.correlation_id = 1;
        s.interval_ms = 0;  // every window
        sub->send(api::encode(api::request(s)));
        sub_reader = std::thread([&] {
            while (std::optional<std::string> frame = sub->read_frame()) {
                const api::decode_result<api::response> r = api::decode_response(*frame);
                if (r.ok() && std::holds_alternative<api::stats_update_response>(*r.value))
                    ++updates;
            }
        });
    }

    std::vector<runtime::building_report> reports;
    const clock_type::time_point start = clock_type::now();
    {
        net::frame_conn conn("127.0.0.1", front.port());
        std::thread writer([&] {
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                api::identify_building_request req;
                req.correlation_id = i + 1;
                req.has_index = true;
                req.corpus_index = i;
                req.b = fleet[i];
                conn.send(api::encode(api::request(req)));
            }
            conn.shutdown_write();
        });
        while (std::optional<std::string> frame = conn.read_frame()) {
            const api::decode_result<api::response> r = api::decode_response(*frame);
            if (!r.ok()) throw std::runtime_error("tcp pass: undecodable frame");
            if (const auto* b = std::get_if<api::building_response>(&*r.value))
                reports.push_back(b->report);
        }
        writer.join();
    }
    out.wall = std::chrono::duration<double>(clock_type::now() - start).count();

    if (sub) sub->shutdown_write();  // server sees EOF, closes the stream
    front.drain();
    loop.join();
    if (sub_reader.joinable()) sub_reader.join();
    out.stats_updates = updates.load();

    if (reports.size() != fleet.size())
        throw std::runtime_error("tcp pass: expected " + std::to_string(fleet.size()) +
                                 " reports, got " + std::to_string(reports.size()));
    std::ostringstream nd;
    service::export_input_order(nd, std::move(reports));
    out.ndjson = nd.str();
    return out;
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_trace.json");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 6 : 24));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 20 : 40));
    const auto reps = static_cast<std::size_t>(args.get_int("reps", quick ? 3 : 5));
    const double max_overhead = static_cast<double>(args.get_int("max-overhead", 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    if (reps < 1) throw std::invalid_argument("--reps must be >= 1");

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor)...\n";
    const std::vector<data::building> fleet = make_fleet(buildings, samples, seed);

    // Interleave off/on reps (off,on,off,on,...) so slow machine drift
    // hits both sides; score each side by its best (min) wall time, the
    // standard low-noise estimator for a deterministic workload.
    double off_best = std::numeric_limits<double>::infinity();
    double on_best = std::numeric_limits<double>::infinity();
    std::string off_ndjson, on_ndjson;
    std::uint64_t spans_recorded = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        obs::set_tracing_enabled(false);
        const auto [nd_off, s_off] = run_pass(fleet, seed);
        off_best = std::min(off_best, s_off);
        if (rep == 0)
            off_ndjson = nd_off;
        else if (nd_off != off_ndjson)
            throw std::runtime_error("untraced reps diverged from each other");

        obs::reset();  // fresh tape per traced rep: bounded memory, honest count
        obs::set_tracing_enabled(true);
        const auto [nd_on, s_on] = run_pass(fleet, seed);
        obs::set_tracing_enabled(false);
        on_best = std::min(on_best, s_on);
        spans_recorded = obs::stats().recorded;
        if (rep == 0)
            on_ndjson = nd_on;
        else if (nd_on != on_ndjson)
            throw std::runtime_error("traced reps diverged from each other");
        std::cerr << "rep " << (rep + 1) << '/' << reps << ": off " << s_off << "s, on "
                  << s_on << "s\n";
    }

    const bool identical = off_ndjson == on_ndjson;
    const double off_rate = off_best > 0.0 ? static_cast<double>(buildings) / off_best : 0.0;
    const double on_rate = on_best > 0.0 ? static_cast<double>(buildings) / on_best : 0.0;
    // Throughput overhead in percent; negative = traced run measured faster
    // (noise floor), clamp the report at 0 so thresholds read sanely.
    const double overhead_pct =
        off_rate > 0.0 ? std::max(0.0, (off_rate - on_rate) / off_rate * 100.0) : 0.0;

    // Telemetry phase: same fleet through the TCP front door, telemetry
    // ticking off vs a fast window plus a live subscribe_stats stream.
    const std::uint32_t tel_window_ms = 50;
    std::cerr << "Telemetry phase: TCP passes, window off vs " << tel_window_ms
              << "ms + subscriber...\n";
    double tel_off_best = std::numeric_limits<double>::infinity();
    double tel_on_best = std::numeric_limits<double>::infinity();
    std::string tel_off_ndjson, tel_on_ndjson;
    std::uint64_t stats_updates = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const tcp_pass off = run_tcp_pass(fleet, seed, 0, false);
        tel_off_best = std::min(tel_off_best, off.wall);
        if (rep == 0)
            tel_off_ndjson = off.ndjson;
        else if (off.ndjson != tel_off_ndjson)
            throw std::runtime_error("telemetry-off reps diverged from each other");

        const tcp_pass on = run_tcp_pass(fleet, seed, tel_window_ms, true);
        tel_on_best = std::min(tel_on_best, on.wall);
        stats_updates = std::max(stats_updates, on.stats_updates);
        if (rep == 0)
            tel_on_ndjson = on.ndjson;
        else if (on.ndjson != tel_on_ndjson)
            throw std::runtime_error("telemetry-on reps diverged from each other");
        std::cerr << "rep " << (rep + 1) << '/' << reps << ": off " << off.wall << "s, on "
                  << on.wall << "s (" << on.stats_updates << " stats_update frames)\n";
    }
    const bool tel_identical = tel_off_ndjson == tel_on_ndjson;
    const double tel_off_rate =
        tel_off_best > 0.0 ? static_cast<double>(buildings) / tel_off_best : 0.0;
    const double tel_on_rate =
        tel_on_best > 0.0 ? static_cast<double>(buildings) / tel_on_best : 0.0;
    const double tel_overhead_pct =
        tel_off_rate > 0.0 ? std::max(0.0, (tel_off_rate - tel_on_rate) / tel_off_rate * 100.0)
                           : 0.0;

    util::table_printer table("Tracing overhead — " + std::to_string(buildings) +
                              " buildings, best of " + std::to_string(reps) +
                              " interleaved reps");
    table.header({"tracing", "wall s", "buildings/s", "spans"});
    table.row({"off", util::table_printer::num(off_best, 3),
               util::table_printer::num(off_rate, 2), "0"});
    table.row({"on", util::table_printer::num(on_best, 3),
               util::table_printer::num(on_rate, 2), std::to_string(spans_recorded)});
    table.print(std::cout);
    std::cout << "\nOverhead: " << util::table_printer::num(overhead_pct, 2)
              << "% of untraced throughput (contract: <= "
              << util::table_printer::num(max_overhead, 1)
              << "%).  NDJSON byte-identical tracing on/off: " << (identical ? "yes" : "NO")
              << "\n\n";

    util::table_printer tel_table("Telemetry overhead — TCP front door, best of " +
                                  std::to_string(reps) + " interleaved reps");
    tel_table.header({"telemetry", "wall s", "buildings/s", "stats_updates"});
    tel_table.row({"off", util::table_printer::num(tel_off_best, 3),
                   util::table_printer::num(tel_off_rate, 2), "0"});
    tel_table.row({std::to_string(tel_window_ms) + "ms + sub",
                   util::table_printer::num(tel_on_best, 3),
                   util::table_printer::num(tel_on_rate, 2), std::to_string(stats_updates)});
    tel_table.print(std::cout);
    std::cout << "\nTelemetry overhead: " << util::table_printer::num(tel_overhead_pct, 2)
              << "% of throughput (contract: <= " << util::table_printer::num(max_overhead, 1)
              << "%).  NDJSON byte-identical telemetry on/off: "
              << (tel_identical ? "yes" : "NO") << "\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_trace_overhead: cannot open " << out_path << " for writing\n";
            return EXIT_FAILURE;
        }
        f << "{\n";
        f << "  \"schema\": \"fisone-bench-trace/v1\",\n";
        f << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        f << "  \"buildings\": " << buildings << ",\n";
        f << "  \"samples_per_floor\": " << samples << ",\n";
        f << "  \"reps\": " << reps << ",\n";
        f << "  \"untraced_seconds\": " << bench::json_num(off_best) << ",\n";
        f << "  \"traced_seconds\": " << bench::json_num(on_best) << ",\n";
        f << "  \"untraced_buildings_per_sec\": " << bench::json_num(off_rate) << ",\n";
        f << "  \"traced_buildings_per_sec\": " << bench::json_num(on_rate) << ",\n";
        f << "  \"overhead_pct\": " << bench::json_num(overhead_pct) << ",\n";
        f << "  \"spans_per_traced_run\": " << spans_recorded << ",\n";
        f << "  \"ndjson_identical\": " << (identical ? "true" : "false") << ",\n";
        f << "  \"telemetry_window_ms\": " << tel_window_ms << ",\n";
        f << "  \"telemetry_off_seconds\": " << bench::json_num(tel_off_best) << ",\n";
        f << "  \"telemetry_on_seconds\": " << bench::json_num(tel_on_best) << ",\n";
        f << "  \"telemetry_overhead_pct\": " << bench::json_num(tel_overhead_pct) << ",\n";
        f << "  \"stats_updates_per_run\": " << stats_updates << ",\n";
        f << "  \"telemetry_ndjson_identical\": " << (tel_identical ? "true" : "false")
          << "\n";
        f << "}\n";
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }

    if (!identical) {
        std::cerr << "bench_trace_overhead: NDJSON diverged between tracing on and off\n";
        return EXIT_FAILURE;
    }
    if (spans_recorded == 0) {
        std::cerr << "bench_trace_overhead: traced run recorded zero spans — "
                     "instrumentation is not reaching the pipeline\n";
        return EXIT_FAILURE;
    }
    if (overhead_pct > max_overhead) {
        std::cerr << "bench_trace_overhead: tracing costs " << overhead_pct
                  << "% of throughput (contract: <= " << max_overhead << "%)\n";
        return EXIT_FAILURE;
    }
    if (!tel_identical) {
        std::cerr << "bench_trace_overhead: NDJSON diverged between telemetry on and off\n";
        return EXIT_FAILURE;
    }
    if (stats_updates == 0) {
        std::cerr << "bench_trace_overhead: subscriber received zero stats_update frames — "
                     "the instrumented run measured nothing\n";
        return EXIT_FAILURE;
    }
    if (tel_overhead_pct > max_overhead) {
        std::cerr << "bench_trace_overhead: telemetry + subscribe_stats costs "
                  << tel_overhead_pct << "% of throughput (contract: <= " << max_overhead
                  << "%)\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_trace_overhead: " << e.what() << '\n';
    return EXIT_FAILURE;
}
