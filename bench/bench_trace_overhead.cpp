/// \file bench_trace_overhead.cpp
/// The tracing subsystem's cost contract, measured: run the same corpus
/// through the wire-framed API server (loopback transport, cache off so
/// every pass does real pipeline work) with tracing off and with tracing
/// on, interleaving repetitions so thermal/frequency drift lands on both
/// sides equally, and compare min-of-reps throughput. The harness asserts
/// the PR's contracts and exits non-zero when either fails:
///  - tracing on vs off produces byte-identical input-order NDJSON
///    re-exports (spans observe, never steer);
///  - the traced run's buildings/sec is within --max-overhead percent
///    (default 5) of the untraced run.
///
/// Run:  ./bench_trace_overhead [--quick] [--json] [--out BENCH_trace.json]
///                              [--buildings N] [--samples-per-floor M]
///                              [--reps R] [--max-overhead PCT] [--seed S]
///
///  --quick   CI-sized corpus (a few seconds total)
///  --json    write the JSON report (schema `fisone-bench-trace/v1`) to --out
///
/// The JSON schema is documented in README.md § Observability.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "api/client.hpp"
#include "api/server.hpp"
#include "obs/trace.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone;
using clock_type = std::chrono::steady_clock;

std::vector<data::building> make_fleet(std::size_t count, std::size_t samples_per_floor,
                                       std::uint64_t seed) {
    std::vector<data::building> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "trace-fleet-" + std::to_string(i);
        spec.num_floors = 3 + i % 4;
        spec.samples_per_floor = samples_per_floor;
        spec.aps_per_floor = 12;
        spec.seed = seed + i;
        fleet.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

api::server_config make_server_config(std::uint64_t seed) {
    api::server_config cfg;
    cfg.service.pipeline.gnn.embedding_dim = 16;
    cfg.service.pipeline.gnn.epochs = 3;
    cfg.service.pipeline.gnn.walks.walks_per_node = 3;
    cfg.service.pipeline.num_threads = 1;  // building-level parallelism only
    cfg.service.seed = seed;
    cfg.enable_cache = false;  // every pass does the full pipeline
    return cfg;
}

/// One full pass: fresh server, submit the fleet, flush, re-export.
std::pair<std::string, double> run_pass(const std::vector<data::building>& fleet,
                                        std::uint64_t seed) {
    api::server srv(make_server_config(seed));
    api::client cli(srv);
    const clock_type::time_point start = clock_type::now();
    for (std::size_t i = 0; i < fleet.size(); ++i) static_cast<void>(cli.identify(fleet[i], i));
    static_cast<void>(cli.flush());
    const double wall = std::chrono::duration<double>(clock_type::now() - start).count();
    std::ostringstream out;
    service::export_input_order(out, cli.reports());
    return {out.str(), wall};
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const bool quick = args.has("quick");
    const bool emit_json = args.has("json");
    const std::string out_path = args.get("out", "BENCH_trace.json");
    const auto buildings =
        static_cast<std::size_t>(args.get_int("buildings", quick ? 6 : 24));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples-per-floor", quick ? 20 : 40));
    const auto reps = static_cast<std::size_t>(args.get_int("reps", quick ? 3 : 5));
    const double max_overhead = static_cast<double>(args.get_int("max-overhead", 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    if (reps < 1) throw std::invalid_argument("--reps must be >= 1");

    std::cerr << "Synthesising " << buildings << " buildings (" << samples
              << " scans/floor)...\n";
    const std::vector<data::building> fleet = make_fleet(buildings, samples, seed);

    // Interleave off/on reps (off,on,off,on,...) so slow machine drift
    // hits both sides; score each side by its best (min) wall time, the
    // standard low-noise estimator for a deterministic workload.
    double off_best = std::numeric_limits<double>::infinity();
    double on_best = std::numeric_limits<double>::infinity();
    std::string off_ndjson, on_ndjson;
    std::uint64_t spans_recorded = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        obs::set_tracing_enabled(false);
        const auto [nd_off, s_off] = run_pass(fleet, seed);
        off_best = std::min(off_best, s_off);
        if (rep == 0)
            off_ndjson = nd_off;
        else if (nd_off != off_ndjson)
            throw std::runtime_error("untraced reps diverged from each other");

        obs::reset();  // fresh tape per traced rep: bounded memory, honest count
        obs::set_tracing_enabled(true);
        const auto [nd_on, s_on] = run_pass(fleet, seed);
        obs::set_tracing_enabled(false);
        on_best = std::min(on_best, s_on);
        spans_recorded = obs::stats().recorded;
        if (rep == 0)
            on_ndjson = nd_on;
        else if (nd_on != on_ndjson)
            throw std::runtime_error("traced reps diverged from each other");
        std::cerr << "rep " << (rep + 1) << '/' << reps << ": off " << s_off << "s, on "
                  << s_on << "s\n";
    }

    const bool identical = off_ndjson == on_ndjson;
    const double off_rate = off_best > 0.0 ? static_cast<double>(buildings) / off_best : 0.0;
    const double on_rate = on_best > 0.0 ? static_cast<double>(buildings) / on_best : 0.0;
    // Throughput overhead in percent; negative = traced run measured faster
    // (noise floor), clamp the report at 0 so thresholds read sanely.
    const double overhead_pct =
        off_rate > 0.0 ? std::max(0.0, (off_rate - on_rate) / off_rate * 100.0) : 0.0;

    util::table_printer table("Tracing overhead — " + std::to_string(buildings) +
                              " buildings, best of " + std::to_string(reps) +
                              " interleaved reps");
    table.header({"tracing", "wall s", "buildings/s", "spans"});
    table.row({"off", util::table_printer::num(off_best, 3),
               util::table_printer::num(off_rate, 2), "0"});
    table.row({"on", util::table_printer::num(on_best, 3),
               util::table_printer::num(on_rate, 2), std::to_string(spans_recorded)});
    table.print(std::cout);
    std::cout << "\nOverhead: " << util::table_printer::num(overhead_pct, 2)
              << "% of untraced throughput (contract: <= "
              << util::table_printer::num(max_overhead, 1)
              << "%).  NDJSON byte-identical tracing on/off: " << (identical ? "yes" : "NO")
              << "\n";

    if (emit_json) {
        std::ofstream f(out_path);
        if (!f) {
            std::cerr << "bench_trace_overhead: cannot open " << out_path << " for writing\n";
            return EXIT_FAILURE;
        }
        f << "{\n";
        f << "  \"schema\": \"fisone-bench-trace/v1\",\n";
        f << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
        f << "  \"buildings\": " << buildings << ",\n";
        f << "  \"samples_per_floor\": " << samples << ",\n";
        f << "  \"reps\": " << reps << ",\n";
        f << "  \"untraced_seconds\": " << bench::json_num(off_best) << ",\n";
        f << "  \"traced_seconds\": " << bench::json_num(on_best) << ",\n";
        f << "  \"untraced_buildings_per_sec\": " << bench::json_num(off_rate) << ",\n";
        f << "  \"traced_buildings_per_sec\": " << bench::json_num(on_rate) << ",\n";
        f << "  \"overhead_pct\": " << bench::json_num(overhead_pct) << ",\n";
        f << "  \"spans_per_traced_run\": " << spans_recorded << ",\n";
        f << "  \"ndjson_identical\": " << (identical ? "true" : "false") << "\n";
        f << "}\n";
        std::cout << "JSON perf trajectory: " << out_path << "\n";
    }

    if (!identical) {
        std::cerr << "bench_trace_overhead: NDJSON diverged between tracing on and off\n";
        return EXIT_FAILURE;
    }
    if (spans_recorded == 0) {
        std::cerr << "bench_trace_overhead: traced run recorded zero spans — "
                     "instrumentation is not reaching the pipeline\n";
        return EXIT_FAILURE;
    }
    if (overhead_pct > max_overhead) {
        std::cerr << "bench_trace_overhead: tracing costs " << overhead_pct
                  << "% of throughput (contract: <= " << max_overhead << "%)\n";
        return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_trace_overhead: " << e.what() << '\n';
    return EXIT_FAILURE;
}
