/// \file bench_table1_comparison.cpp
/// Reproduces paper Table I: FIS-ONE vs SDCN, DAEGC, METIS and MDS on the
/// two corpora ("Microsoft" = synthetic office buildings following the
/// Fig.-7 floor distribution; "Ours" = three synthetic malls), scored by
/// ARI, NMI and edit distance, each reported as mean(std) over buildings.
/// The baselines produce clusterings only; they are run through FIS-ONE's
/// own spillover indexing, exactly as the paper adapts them (§V-A).
///
/// Flags: --buildings N (default 6)      size of the Microsoft-like corpus
///        --samples-per-floor M (240)    scans per floor
///        --seed S (1)                   corpus seed
///        --skip-deep                    skip SDCN/DAEGC (quick runs)

#include <cstdlib>
#include <exception>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/daegc.hpp"
#include "baselines/mds.hpp"
#include "baselines/metis_partitioner.hpp"
#include "baselines/sdcn.hpp"
#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone;

struct metric_bundle {
    util::running_stats ari, nmi, edit;
};

/// Per-algorithm, per-corpus metric accumulators.
using score_table = std::map<std::string, std::map<std::string, metric_bundle>>;

void run_corpus(const data::corpus& corpus, bool skip_deep, std::uint64_t seed,
                score_table& scores) {
    for (std::size_t bi = 0; bi < corpus.buildings.size(); ++bi) {
        const data::building& b = corpus.buildings[bi];
        const std::uint64_t bseed = seed * 7919 + bi;

        // --- FIS-ONE: the full pipeline ---
        core::fis_one_config cfg;
        cfg.gnn.seed = bseed;
        cfg.seed = bseed;
        const core::fis_one_result r = core::fis_one(cfg).run(b);
        auto& fis = scores["FIS-ONE"][corpus.name];
        fis.ari.add(r.ari);
        fis.nmi.add(r.nmi);
        fis.edit.add(r.edit_distance);

        // --- baselines: cluster, then FIS-ONE's indexing ---
        const auto add_baseline = [&](const std::string& name,
                                      const std::function<std::vector<int>()>& cluster_fn) {
            const std::vector<int> assignment = cluster_fn();
            const core::pipeline_scores s = core::evaluate_with_indexing(
                b, assignment, indexing::similarity_kind::adapted_jaccard,
                indexing::tsp_solver::exact, bseed);
            auto& m = scores[name][corpus.name];
            m.ari.add(s.ari);
            m.nmi.add(s.nmi);
            m.edit.add(s.edit_distance);
        };

        if (!skip_deep) {
            add_baseline("SDCN", [&] {
                baselines::sdcn_config c;
                c.seed = bseed;
                return baselines::sdcn_cluster(b, c);
            });
            add_baseline("DAEGC", [&] {
                baselines::daegc_config c;
                c.seed = bseed;
                return baselines::daegc_cluster(b, c);
            });
        }
        add_baseline("METIS", [&] {
            baselines::metis_config c;
            c.seed = bseed;
            return baselines::metis_cluster(b, c);
        });
        add_baseline("MDS", [&] { return baselines::mds_cluster(b); });

        std::cerr << corpus.name << ": building " << (bi + 1) << "/" << corpus.buildings.size()
                  << " done (floors=" << b.num_floors << ", ARI=" << r.ari << ")\n";
    }
}

}  // namespace

int main(int argc, char** argv) try {
    const util::cli_args args(argc, argv);
    const auto num_buildings = static_cast<std::size_t>(args.get_int("buildings", 6));
    const auto samples = static_cast<std::size_t>(args.get_int("samples-per-floor", 240));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const bool skip_deep = args.has("skip-deep");

    std::cerr << "Synthesising corpora (" << num_buildings << " Microsoft-like buildings + 3 malls, "
              << samples << " scans/floor)...\n";
    const data::corpus microsoft = sim::make_microsoft_corpus(num_buildings, samples, seed);
    const data::corpus ours = sim::make_malls_corpus(samples, seed + 1);

    score_table scores;
    run_corpus(microsoft, skip_deep, seed, scores);
    run_corpus(ours, skip_deep, seed, scores);

    std::cout << "\nTable I — performance comparison with baseline algorithms, mean(std)\n\n";
    util::table_printer table;
    table.header({"Algorithm", "ARI Microsoft", "ARI Ours", "NMI Microsoft", "NMI Ours",
                  "Edit Microsoft", "Edit Ours"});
    const std::vector<std::string> order{"FIS-ONE", "SDCN", "DAEGC", "METIS", "MDS"};
    for (const std::string& name : order) {
        if (scores.find(name) == scores.end()) continue;
        auto& by_corpus = scores[name];
        table.row({name,
                   util::table_printer::mean_std(by_corpus["Microsoft"].ari.mean(),
                                                 by_corpus["Microsoft"].ari.stddev()),
                   util::table_printer::mean_std(by_corpus["Ours"].ari.mean(),
                                                 by_corpus["Ours"].ari.stddev()),
                   util::table_printer::mean_std(by_corpus["Microsoft"].nmi.mean(),
                                                 by_corpus["Microsoft"].nmi.stddev()),
                   util::table_printer::mean_std(by_corpus["Ours"].nmi.mean(),
                                                 by_corpus["Ours"].nmi.stddev()),
                   util::table_printer::mean_std(by_corpus["Microsoft"].edit.mean(),
                                                 by_corpus["Microsoft"].edit.stddev()),
                   util::table_printer::mean_std(by_corpus["Ours"].edit.mean(),
                                                 by_corpus["Ours"].edit.stddev())});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape check: FIS-ONE strictly best on all metrics and both\n"
                 "corpora; SDCN/DAEGC next; METIS and MDS at the bottom.\n";
    return EXIT_SUCCESS;
} catch (const std::exception& e) {
    std::cerr << "bench_table1_comparison: " << e.what() << '\n';
    return EXIT_FAILURE;
}
