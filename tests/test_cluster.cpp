// Tests for src/cluster: UPGMA (NN-chain + linkage cutting) and k-means.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cluster/hierarchical.hpp"
#include "cluster/kmeans.hpp"
#include "eval/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone;
using linalg::matrix;

/// k well-separated Gaussian blobs in `dim` dimensions.
matrix make_blobs(std::size_t k, std::size_t per_cluster, std::size_t dim, double spread,
                  util::rng& gen, std::vector<int>* truth = nullptr) {
    matrix pts(k * per_cluster, dim);
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<double> center(dim);
        for (double& x : center) x = gen.uniform(-50.0, 50.0);
        for (std::size_t i = 0; i < per_cluster; ++i) {
            const std::size_t row = c * per_cluster + i;
            for (std::size_t j = 0; j < dim; ++j)
                pts(row, j) = center[j] + gen.normal(0.0, spread);
            if (truth != nullptr) truth->push_back(static_cast<int>(c));
        }
    }
    return pts;
}

// ---------- UPGMA ----------

TEST(upgma, linkage_has_n_minus_1_merges) {
    util::rng gen(1);
    const matrix pts = make_blobs(3, 10, 4, 0.5, gen);
    const auto merges = cluster::upgma_linkage(pts);
    EXPECT_EQ(merges.size(), pts.rows() - 1);
}

TEST(upgma, separates_well_separated_blobs) {
    util::rng gen(2);
    std::vector<int> truth;
    const matrix pts = make_blobs(4, 25, 8, 0.5, gen, &truth);
    const auto labels = cluster::upgma_cluster(pts, 4);
    EXPECT_DOUBLE_EQ(eval::adjusted_rand_index(labels, truth), 1.0);
}

TEST(upgma, label_range_and_coverage) {
    util::rng gen(3);
    const matrix pts = make_blobs(3, 15, 4, 2.0, gen);
    const auto labels = cluster::upgma_cluster(pts, 5);
    std::set<int> seen(labels.begin(), labels.end());
    EXPECT_EQ(seen.size(), 5u);
    for (const int l : labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 5);
    }
}

TEST(upgma, two_points) {
    matrix pts{{0.0, 0.0}, {1.0, 1.0}};
    const auto merges = cluster::upgma_linkage(pts);
    ASSERT_EQ(merges.size(), 1u);
    EXPECT_NEAR(merges[0].height, std::sqrt(2.0), 1e-6);  // float-precision linkage storage
    const auto labels = cluster::cut_linkage(merges, 2, 1);
    EXPECT_EQ(labels[0], labels[1]);
}

TEST(upgma, singleton_input) {
    matrix pts{{1.0, 2.0}};
    EXPECT_TRUE(cluster::upgma_linkage(pts).empty());
    EXPECT_EQ(cluster::upgma_cluster(pts, 1), std::vector<int>{0});
}

TEST(upgma, average_linkage_heights_are_exact_on_line) {
    // Points 0, 1, 10 on a line: merge (0,1) at 1, then {0,1} with {10} at
    // average distance (10 + 9)/2 = 9.5.
    matrix pts{{0.0}, {1.0}, {10.0}};
    const auto merges = cluster::upgma_linkage(pts);
    ASSERT_EQ(merges.size(), 2u);
    EXPECT_NEAR(merges[0].height, 1.0, 1e-9);
    EXPECT_NEAR(merges[1].height, 9.5, 1e-6);  // float storage
}

TEST(upgma, cut_at_n_gives_singletons) {
    util::rng gen(4);
    const matrix pts = make_blobs(2, 5, 3, 1.0, gen);
    const auto merges = cluster::upgma_linkage(pts);
    const auto labels = cluster::cut_linkage(merges, 10, 10);
    std::set<int> seen(labels.begin(), labels.end());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(upgma, cut_validation) {
    util::rng gen(5);
    const matrix pts = make_blobs(2, 5, 3, 1.0, gen);
    const auto merges = cluster::upgma_linkage(pts);
    EXPECT_THROW((void)cluster::cut_linkage(merges, 10, 0), std::invalid_argument);
    EXPECT_THROW((void)cluster::cut_linkage(merges, 10, 11), std::invalid_argument);
    EXPECT_THROW((void)cluster::upgma_linkage(matrix{}), std::invalid_argument);
}

TEST(upgma, deterministic) {
    util::rng gen(6);
    const matrix pts = make_blobs(3, 20, 4, 1.0, gen);
    EXPECT_EQ(cluster::upgma_cluster(pts, 3), cluster::upgma_cluster(pts, 3));
}

TEST(upgma, handles_duplicate_points) {
    matrix pts(6, 2, 0.0);
    for (std::size_t i = 3; i < 6; ++i) {
        pts(i, 0) = 5.0;
        pts(i, 1) = 5.0;
    }
    const auto labels = cluster::upgma_cluster(pts, 2);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_EQ(labels[3], labels[4]);
    EXPECT_NE(labels[0], labels[3]);
}

// ---------- k-means ----------

TEST(kmeans, separates_blobs) {
    util::rng gen(7);
    std::vector<int> truth;
    const matrix pts = make_blobs(3, 40, 5, 0.5, gen, &truth);
    const auto result = cluster::kmeans(pts, 3, gen);
    EXPECT_DOUBLE_EQ(eval::adjusted_rand_index(result.assignment, truth), 1.0);
    EXPECT_EQ(result.centroids.rows(), 3u);
}

TEST(kmeans, inertia_decreases_with_more_clusters) {
    util::rng gen(8);
    const matrix pts = make_blobs(4, 30, 4, 3.0, gen);
    const double inertia2 = cluster::kmeans(pts, 2, gen).inertia;
    const double inertia8 = cluster::kmeans(pts, 8, gen).inertia;
    EXPECT_LT(inertia8, inertia2);
}

TEST(kmeans, all_clusters_non_empty) {
    util::rng gen(9);
    const matrix pts = make_blobs(2, 30, 3, 1.0, gen);
    const auto result = cluster::kmeans(pts, 6, gen);
    std::set<int> seen(result.assignment.begin(), result.assignment.end());
    EXPECT_EQ(seen.size(), 6u);
}

TEST(kmeans, k_equals_n) {
    util::rng gen(10);
    const matrix pts = make_blobs(1, 5, 2, 3.0, gen);
    const auto result = cluster::kmeans(pts, 5, gen);
    std::set<int> seen(result.assignment.begin(), result.assignment.end());
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(kmeans, identical_points) {
    matrix pts(8, 3, 2.5);
    util::rng gen(11);
    const auto result = cluster::kmeans(pts, 2, gen);
    EXPECT_EQ(result.assignment.size(), 8u);
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(kmeans, validation) {
    util::rng gen(12);
    const matrix pts = make_blobs(1, 4, 2, 1.0, gen);
    EXPECT_THROW((void)cluster::kmeans(pts, 0, gen), std::invalid_argument);
    EXPECT_THROW((void)cluster::kmeans(pts, 5, gen), std::invalid_argument);
    EXPECT_THROW((void)cluster::kmeans(matrix(3, 0), 2, gen), std::invalid_argument);
}

// ---------- UPGMA vs k-means on elongated clusters ----------

TEST(clustering, upgma_separates_anisotropic_strips) {
    // Two moderately elongated strips whose within-strip average distance is
    // clearly below the across-strip distance: average linkage must recover
    // them exactly. (The pipeline-level hierarchical-vs-k-means comparison
    // of paper Fig. 8(c,d) lives in bench_fig8_ablation.)
    util::rng gen(13);
    const std::size_t per = 60;
    matrix pts(2 * per, 2);
    std::vector<int> truth;
    for (std::size_t i = 0; i < per; ++i) {
        pts(i, 0) = gen.uniform(0.0, 10.0);
        pts(i, 1) = gen.normal(0.0, 0.3);
        truth.push_back(0);
    }
    for (std::size_t i = 0; i < per; ++i) {
        pts(per + i, 0) = gen.uniform(0.0, 10.0);
        pts(per + i, 1) = 9.0 + gen.normal(0.0, 0.3);
        truth.push_back(1);
    }
    const double upgma_ari =
        eval::adjusted_rand_index(cluster::upgma_cluster(pts, 2), truth);
    EXPECT_DOUBLE_EQ(upgma_ari, 1.0);
}

}  // namespace
