// Tests for the beyond-the-paper extensions: dendrogram-gap floor-count
// estimation and the fully unsupervised pipeline mode (paper conclusion's
// "towards unsupervised floor identification").

#include <gtest/gtest.h>

#include "cluster/floor_count.hpp"
#include "core/fis_one.hpp"
#include "sim/building_generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone;
using linalg::matrix;

matrix blobs(std::size_t k, std::size_t per, std::size_t dim, double spread, util::rng& gen) {
    matrix pts(k * per, dim);
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<double> center(dim);
        for (double& x : center) x = gen.uniform(-40.0, 40.0);
        for (std::size_t i = 0; i < per; ++i)
            for (std::size_t j = 0; j < dim; ++j)
                pts(c * per + i, j) = center[j] + gen.normal(0.0, spread);
    }
    return pts;
}

// ---------- floor-count estimation on synthetic blobs ----------

class floor_count_sweep : public ::testing::TestWithParam<int> {};

TEST_P(floor_count_sweep, recovers_blob_count) {
    const auto k = static_cast<std::size_t>(GetParam());
    util::rng gen(1000 + k);
    const matrix pts = blobs(k, 30, 8, 0.5, gen);
    const auto est = cluster::estimate_floor_count(pts, 2, 12);
    EXPECT_EQ(est.num_floors, k);
    EXPECT_GT(est.gap_ratio, 2.0);  // well-separated blobs → decisive gap
}

INSTANTIATE_TEST_SUITE_P(blob_counts, floor_count_sweep, ::testing::Values(2, 3, 4, 5, 7, 9));

TEST(floor_count, respects_search_bounds) {
    util::rng gen(7);
    const matrix pts = blobs(6, 20, 4, 0.4, gen);
    const auto est = cluster::estimate_floor_count(pts, 2, 4);
    EXPECT_GE(est.num_floors, 2u);
    EXPECT_LE(est.num_floors, 4u);
}

TEST(floor_count, validates_inputs) {
    util::rng gen(8);
    const matrix pts = blobs(3, 4, 2, 0.3, gen);  // 12 points
    EXPECT_THROW((void)cluster::estimate_floor_count(pts, 1, 5), std::invalid_argument);
    EXPECT_THROW((void)cluster::estimate_floor_count(pts, 6, 5), std::invalid_argument);
    EXPECT_THROW((void)cluster::estimate_floor_count(pts, 2, 12), std::invalid_argument);

    const auto merges = cluster::upgma_linkage(pts);
    EXPECT_THROW((void)cluster::estimate_floor_count_from_linkage(merges, 99, 2, 5),
                 std::invalid_argument);
}

TEST(floor_count, reports_candidate_heights) {
    util::rng gen(9);
    const matrix pts = blobs(4, 25, 6, 0.5, gen);
    const auto est = cluster::estimate_floor_count(pts, 2, 6);
    EXPECT_EQ(est.heights.size(), 5u);  // k = 2..6
    // heights are the *next* merge at each k: descending in k means
    // ascending in the stored (k-ascending) vector... they must be
    // monotone non-increasing as k grows.
    for (std::size_t i = 1; i < est.heights.size(); ++i)
        EXPECT_LE(est.heights[i], est.heights[i - 1] + 1e-9);
}

// ---------- floor-count estimation on simulated buildings ----------

class building_floor_count : public ::testing::TestWithParam<int> {};

TEST_P(building_floor_count, estimates_from_rf_embeddings) {
    const auto floors = static_cast<std::size_t>(GetParam());
    sim::building_spec spec;
    spec.num_floors = floors;
    spec.samples_per_floor = 90;
    spec.aps_per_floor = 14;
    spec.model.path_loss_exponent = 3.3;
    spec.floor_width_m = 60.0;
    spec.floor_depth_m = 40.0;
    spec.seed = 500 + floors;
    const auto b = sim::generate_building(spec).building;

    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 16;
    cfg.gnn.epochs = 8;
    cfg.gnn.seed = 500 + floors;
    cfg.seed = cfg.gnn.seed;
    cfg.estimate_floor_count = true;
    cfg.max_floors = 10;
    const auto r = core::fis_one(cfg).run(b);
    // RF embeddings blend adjacent floors, so the dendrogram gap is only an
    // approximate signal here (see floor_count.hpp): assert the documented
    // contract — a bounded estimate in the vicinity of the truth — rather
    // than exact recovery, which only separated data supports.
    EXPECT_GE(r.num_clusters, 2u);
    EXPECT_LE(r.num_clusters, 10u);
    EXPECT_GE(r.num_clusters + 2, floors);
    EXPECT_LE(r.num_clusters, floors + 2);
}

INSTANTIATE_TEST_SUITE_P(heights, building_floor_count, ::testing::Values(3, 4, 5));

TEST(unsupervised_mode, produces_consistent_result_structure) {
    sim::building_spec spec;
    spec.num_floors = 4;
    spec.samples_per_floor = 80;
    spec.model.path_loss_exponent = 3.3;
    spec.floor_width_m = 60.0;
    spec.floor_depth_m = 40.0;
    spec.seed = 600;
    const auto b = sim::generate_building(spec).building;

    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 16;
    cfg.gnn.epochs = 6;
    cfg.gnn.seed = 600;
    cfg.estimate_floor_count = true;
    const auto r = core::fis_one(cfg).run(b);

    EXPECT_EQ(r.cluster_to_floor.size(), r.num_clusters);
    for (const int f : r.predicted_floor) {
        EXPECT_GE(f, 0);
        EXPECT_LT(f, static_cast<int>(r.num_clusters));
    }
    EXPECT_GE(r.edit_distance, 0.0);
    EXPECT_LE(r.edit_distance, 1.0);
}

TEST(unsupervised_mode, known_count_still_default) {
    // estimate_floor_count defaults off: num_clusters equals the building's.
    sim::building_spec spec;
    spec.num_floors = 3;
    spec.samples_per_floor = 60;
    spec.seed = 601;
    const auto b = sim::generate_building(spec).building;
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 16;
    cfg.gnn.epochs = 3;
    const auto r = core::fis_one(cfg).run(b);
    EXPECT_EQ(r.num_clusters, 3u);
}

}  // namespace
