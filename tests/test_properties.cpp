// Cross-module property tests: randomized invariants checked over
// parameterized sweeps (seeds, shapes, scales). These complement the
// per-module unit tests with the "for all" style guarantees the library's
// algorithms are supposed to satisfy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "autodiff/gradcheck.hpp"
#include "autodiff/tape.hpp"
#include "cluster/hierarchical.hpp"
#include "eval/metrics.hpp"
#include "indexing/cluster_indexer.hpp"
#include "indexing/similarity.hpp"
#include "linalg/eigen.hpp"
#include "sim/propagation.hpp"
#include "tsp/tsp.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone;
using linalg::matrix;

matrix random_matrix(std::size_t r, std::size_t c, util::rng& gen) {
    matrix m(r, c);
    for (double& x : m.flat()) x = gen.normal();
    return m;
}

// ---------- eval metric invariants ----------

class metric_invariants : public ::testing::TestWithParam<int> {};

TEST_P(metric_invariants, permutation_of_labels_changes_nothing) {
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
    const std::size_t n = 60;
    std::vector<int> pred(n), truth(n);
    for (std::size_t i = 0; i < n; ++i) {
        pred[i] = static_cast<int>(gen.uniform_index(5));
        truth[i] = static_cast<int>(gen.uniform_index(4));
    }
    // Rename predicted labels with a random injective map.
    std::vector<int> names{10, 20, 30, 40, 50};
    gen.shuffle(names);
    std::vector<int> renamed(n);
    for (std::size_t i = 0; i < n; ++i) renamed[i] = names[static_cast<std::size_t>(pred[i])];

    EXPECT_NEAR(eval::adjusted_rand_index(pred, truth),
                eval::adjusted_rand_index(renamed, truth), 1e-12);
    EXPECT_NEAR(eval::normalized_mutual_information(pred, truth),
                eval::normalized_mutual_information(renamed, truth), 1e-12);
}

TEST_P(metric_invariants, bounds_hold) {
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
    const std::size_t n = 40;
    std::vector<int> pred(n), truth(n);
    for (std::size_t i = 0; i < n; ++i) {
        pred[i] = static_cast<int>(gen.uniform_index(6));
        truth[i] = static_cast<int>(gen.uniform_index(3));
    }
    const double ari = eval::adjusted_rand_index(pred, truth);
    const double nmi = eval::normalized_mutual_information(pred, truth);
    EXPECT_GE(ari, -1.0);
    EXPECT_LE(ari, 1.0);
    EXPECT_GE(nmi, 0.0);
    EXPECT_LE(nmi, 1.0);
}

INSTANTIATE_TEST_SUITE_P(seeds, metric_invariants, ::testing::Range(0, 10));

// ---------- Jaro properties ----------

class jaro_properties : public ::testing::TestWithParam<int> {};

TEST_P(jaro_properties, symmetric_and_bounded_on_permutations) {
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 733 + 3);
    const std::size_t n = 3 + gen.uniform_index(8);
    std::vector<int> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = static_cast<int>(i);
    gen.shuffle(a);
    gen.shuffle(b);
    const double ab = eval::jaro_similarity(a, b);
    EXPECT_NEAR(ab, eval::jaro_similarity(b, a), 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(eval::jaro_similarity(a, a), 1.0);
}

INSTANTIATE_TEST_SUITE_P(seeds, jaro_properties, ::testing::Range(0, 12));

// ---------- TSP: asymmetric instances & approximation sanity ----------

class asymmetric_tsp : public ::testing::TestWithParam<int> {};

TEST_P(asymmetric_tsp, held_karp_matches_brute_force) {
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 997 + 13);
    const std::size_t n = 3 + gen.uniform_index(5);  // 3..7
    matrix d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (i != j) d(i, j) = gen.uniform(0.1, 5.0);  // asymmetric
    const std::size_t start = gen.uniform_index(n);
    EXPECT_NEAR(tsp::held_karp_path(d, start).cost, tsp::brute_force_path(d, start).cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(seeds, asymmetric_tsp, ::testing::Range(0, 15));

// ---------- adapted Jaccard: randomized invariants ----------

class adapted_jaccard_properties : public ::testing::TestWithParam<int> {};

TEST_P(adapted_jaccard_properties, bounded_symmetric_and_scale_covariant) {
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 271 + 29);
    const std::size_t m = 12;
    indexing::cluster_profile a, b;
    a.freq.resize(m);
    b.freq.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
        a.freq[k] = gen.bernoulli(0.6) ? std::floor(gen.uniform(1.0, 40.0)) : 0.0;
        b.freq[k] = gen.bernoulli(0.6) ? std::floor(gen.uniform(1.0, 40.0)) : 0.0;
    }
    const double ab = indexing::adapted_jaccard(a, b);
    EXPECT_NEAR(ab, indexing::adapted_jaccard(b, a), 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);

    // Doubling all frequencies leaves the coefficient unchanged (it is a
    // ratio of degree-2 terms in the frequencies).
    indexing::cluster_profile a2 = a, b2 = b;
    for (double& f : a2.freq) f *= 2.0;
    for (double& f : b2.freq) f *= 2.0;
    EXPECT_NEAR(indexing::adapted_jaccard(a2, b2), ab, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(seeds, adapted_jaccard_properties, ::testing::Range(0, 12));

// ---------- indexer: chain recovery under varying size/decay ----------

class chain_recovery : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(chain_recovery, identity_ordering_recovered) {
    const auto n = static_cast<std::size_t>(std::get<0>(GetParam()));
    const double decay = 0.5 / static_cast<double>(std::get<1>(GetParam()));
    matrix sim(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const auto gap = static_cast<double>(i > j ? i - j : j - i);
            sim(i, j) = gap == 0.0 ? 1.0 : std::max(0.0, 1.0 - decay * gap);
        }
    util::rng gen(99);
    const auto r = indexing::index_from_bottom(sim, 0, indexing::tsp_solver::exact, gen);
    for (std::size_t c = 0; c < n; ++c) EXPECT_EQ(r.cluster_to_floor[c], static_cast<int>(c));
}

INSTANTIATE_TEST_SUITE_P(sizes_decays, chain_recovery,
                         ::testing::Combine(::testing::Values(3, 5, 8, 10),
                                            ::testing::Values(1, 2, 3)));

// ---------- UPGMA: cut consistency across k ----------

class upgma_nesting : public ::testing::TestWithParam<int> {};

TEST_P(upgma_nesting, coarser_cuts_nest_finer_ones) {
    // Hierarchical clusterings are nested: merging from k+1 to k clusters
    // only unions two clusters, never splits one.
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
    const matrix pts = random_matrix(40, 4, gen);
    const auto merges = cluster::upgma_linkage(pts);
    for (std::size_t k = 2; k <= 6; ++k) {
        const auto fine = cluster::cut_linkage(merges, 40, k + 1);
        const auto coarse = cluster::cut_linkage(merges, 40, k);
        // every fine cluster maps into exactly one coarse cluster
        std::map<int, int> image;
        for (std::size_t i = 0; i < 40; ++i) {
            const auto it = image.find(fine[i]);
            if (it == image.end())
                image[fine[i]] = coarse[i];
            else
                EXPECT_EQ(it->second, coarse[i]) << "fine cluster split at k=" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, upgma_nesting, ::testing::Range(0, 8));

// ---------- autodiff: gradcheck across shapes ----------

class gradcheck_shapes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(gradcheck_shapes, layer_stack_gradients_correct) {
    const auto rows = static_cast<std::size_t>(std::get<0>(GetParam()));
    const auto cols = static_cast<std::size_t>(std::get<1>(GetParam()));
    util::rng gen(static_cast<std::uint64_t>(rows * 100 + cols));
    const matrix w = random_matrix(cols, 3, gen);
    const matrix input = random_matrix(rows, cols, gen);

    autodiff::tape t;
    const autodiff::var x = t.parameter(input);
    const autodiff::var h = t.l2_normalize_rows(t.tanh_act(t.matmul(x, t.constant(w))));
    const autodiff::var loss = t.mean_all(t.hadamard(h, h));
    t.backward(loss);
    const matrix analytic = t.grad(x);

    const auto fn = [&w](const matrix& m) {
        autodiff::tape t2;
        const autodiff::var x2 = t2.parameter(m);
        const autodiff::var h2 = t2.l2_normalize_rows(t2.tanh_act(t2.matmul(x2, t2.constant(w))));
        const autodiff::var l2 = t2.mean_all(t2.hadamard(h2, h2));
        return t2.value(l2)(0, 0);
    };
    const auto result = autodiff::check_gradient(fn, input, analytic);
    EXPECT_TRUE(result.passed) << "abs=" << result.max_abs_error
                               << " rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(shapes, gradcheck_shapes,
                         ::testing::Combine(::testing::Values(1, 3, 7),
                                            ::testing::Values(2, 5, 9)));

// ---------- propagation: monotonicity sweeps ----------

class faf_sweep : public ::testing::TestWithParam<int> {};

TEST_P(faf_sweep, stronger_slabs_mean_weaker_cross_floor_rss) {
    const double faf = static_cast<double>(GetParam());
    sim::propagation_model weak, strong;
    weak.floor_attenuation_db = faf;
    strong.floor_attenuation_db = faf + 4.0;
    const sim::position tx{0, 0, 0};
    const sim::position rx{15, 5, 4};
    EXPECT_GT(sim::mean_rss_dbm(weak, tx, rx, 1, false),
              sim::mean_rss_dbm(strong, tx, rx, 1, false));
    // same-floor link unaffected by the slab factor
    EXPECT_DOUBLE_EQ(sim::mean_rss_dbm(weak, tx, rx, 0, false),
                     sim::mean_rss_dbm(strong, tx, rx, 0, false));
}

INSTANTIATE_TEST_SUITE_P(fafs, faf_sweep, ::testing::Values(6, 10, 14, 18, 22));

// ---------- eigensolver: random PSD reconstruction ----------

class eigen_psd : public ::testing::TestWithParam<int> {};

TEST_P(eigen_psd, gram_matrices_have_nonnegative_spectrum) {
    util::rng gen(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
    const matrix a = random_matrix(12, 6, gen);
    const matrix gram = linalg::matmul_nt(a, a);  // PSD by construction
    const auto eig = linalg::jacobi_eigen(gram);
    for (const double lambda : eig.values) EXPECT_GE(lambda, -1e-9);
    // trace preserved
    double trace = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < 12; ++i) trace += gram(i, i);
    for (const double lambda : eig.values) sum += lambda;
    EXPECT_NEAR(trace, sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(seeds, eigen_psd, ::testing::Range(0, 8));

}  // namespace
