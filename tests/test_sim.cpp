// Tests for src/sim: propagation physics, building generation invariants,
// spillover structure (the property FIS-ONE relies on), corpus builders.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/building_generator.hpp"
#include "sim/propagation.hpp"

namespace {

using namespace fisone;
using namespace fisone::sim;

// ---------- propagation ----------

TEST(propagation, distance_basics) {
    EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
    EXPECT_DOUBLE_EQ(distance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(propagation, rss_decreases_with_distance) {
    propagation_model m;
    const position tx{0, 0, 0};
    double prev = 1e9;
    for (double d = 1.0; d <= 64.0; d *= 2.0) {
        const double rss = mean_rss_dbm(m, tx, {d, 0, 0}, 0, false);
        EXPECT_LT(rss, prev);
        prev = rss;
    }
}

TEST(propagation, rss_decreases_with_floors_crossed) {
    propagation_model m;
    const position tx{0, 0, 0};
    const position rx{10, 0, 4};
    const double same = mean_rss_dbm(m, tx, rx, 0, false);
    const double one = mean_rss_dbm(m, tx, rx, 1, false);
    const double two = mean_rss_dbm(m, tx, rx, 2, false);
    EXPECT_NEAR(same - one, m.floor_attenuation_db, 1e-12);
    EXPECT_NEAR(one - two, m.floor_attenuation_db, 1e-12);
}

TEST(propagation, atrium_attenuates_less) {
    propagation_model m;
    const position tx{0, 0, 0};
    const position rx{10, 0, 8};
    EXPECT_GT(mean_rss_dbm(m, tx, rx, 2, true), mean_rss_dbm(m, tx, rx, 2, false));
}

TEST(propagation, log_distance_slope_matches_exponent) {
    propagation_model m;
    m.path_loss_exponent = 3.0;
    const position tx{0, 0, 0};
    const double r10 = mean_rss_dbm(m, tx, {10, 0, 0}, 0, false);
    const double r100 = mean_rss_dbm(m, tx, {100, 0, 0}, 0, false);
    EXPECT_NEAR(r10 - r100, 10.0 * 3.0, 1e-9);  // 10·n dB per decade
}

TEST(propagation, below_threshold_not_detected) {
    propagation_model m;
    m.shadowing_sigma_db = 0.0;
    util::rng gen(1);
    // A link whose mean RSS is far below the threshold never detects.
    const link_sample far = compute_link(m, {0, 0, 0}, {2000, 0, 0}, 0, false, 0.0, gen);
    EXPECT_FALSE(far.detected);
    const link_sample near = compute_link(m, {0, 0, 0}, {2, 0, 0}, 0, false, 0.0, gen);
    EXPECT_TRUE(near.detected);
}

TEST(propagation, readings_clamped_and_quantized) {
    propagation_model m;
    m.shadowing_sigma_db = 0.0;
    util::rng gen(2);
    const link_sample near = compute_link(m, {0, 0, 0}, {0.1, 0, 0}, 0, false, 0.0, gen);
    ASSERT_TRUE(near.detected);
    EXPECT_LE(near.rss_dbm, m.rss_ceil_dbm);
    EXPECT_DOUBLE_EQ(near.rss_dbm, std::round(near.rss_dbm));
}

TEST(propagation, device_offset_shifts_reading) {
    propagation_model m;
    m.shadowing_sigma_db = 0.0;
    m.quantize = false;
    util::rng gen(3);
    const link_sample base = compute_link(m, {0, 0, 0}, {5, 0, 0}, 0, false, 0.0, gen);
    const link_sample offset = compute_link(m, {0, 0, 0}, {5, 0, 0}, 0, false, 7.0, gen);
    ASSERT_TRUE(base.detected);
    ASSERT_TRUE(offset.detected);
    EXPECT_NEAR(offset.rss_dbm - base.rss_dbm, 7.0, 1e-12);
}

// ---------- building generation ----------

TEST(generator, building_is_valid_and_sized) {
    building_spec spec;
    spec.num_floors = 4;
    spec.samples_per_floor = 40;
    spec.aps_per_floor = 12;
    spec.seed = 5;
    const auto sb = generate_building(spec);
    EXPECT_NO_THROW(sb.building.validate());
    EXPECT_EQ(sb.building.num_floors, 4u);
    EXPECT_EQ(sb.building.num_macs, 48u);
    EXPECT_EQ(sb.building.samples.size(), 160u);
    EXPECT_EQ(sb.aps.size(), 48u);
    const auto per_floor = sb.building.samples_per_floor();
    for (const std::size_t c : per_floor) EXPECT_EQ(c, 40u);
}

TEST(generator, labeled_sample_is_on_bottom_floor) {
    building_spec spec;
    spec.seed = 6;
    const auto b = generate_building(spec).building;
    EXPECT_EQ(b.labeled_floor, 0);
    EXPECT_EQ(b.samples[b.labeled_sample].true_floor, 0);
}

TEST(generator, deterministic_per_seed) {
    building_spec spec;
    spec.num_floors = 3;
    spec.samples_per_floor = 20;
    spec.seed = 7;
    const auto a = generate_building(spec).building;
    const auto b = generate_building(spec).building;
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        ASSERT_EQ(a.samples[i].observations.size(), b.samples[i].observations.size());
        for (std::size_t j = 0; j < a.samples[i].observations.size(); ++j) {
            EXPECT_EQ(a.samples[i].observations[j].mac_id, b.samples[i].observations[j].mac_id);
            EXPECT_EQ(a.samples[i].observations[j].rss_dbm, b.samples[i].observations[j].rss_dbm);
        }
    }
    building_spec other = spec;
    other.seed = 8;
    const auto c = generate_building(other).building;
    EXPECT_NE(a.samples[0].observations.size() + a.samples[1].observations.size(),
              c.samples[0].observations.size() + c.samples[1].observations.size());
}

TEST(generator, own_floor_aps_dominate_observations) {
    building_spec spec;
    spec.num_floors = 5;
    spec.samples_per_floor = 30;
    spec.seed = 9;
    const auto sb = generate_building(spec);
    std::size_t own = 0, other = 0;
    for (const auto& s : sb.building.samples)
        for (const auto& o : s.observations) {
            if (sb.aps[o.mac_id].floor == s.true_floor)
                ++own;
            else
                ++other;
        }
    EXPECT_GT(own, other);  // same-floor APs are the majority of readings
}

TEST(generator, same_floor_rss_stronger_on_average) {
    building_spec spec;
    spec.num_floors = 5;
    spec.samples_per_floor = 30;
    spec.seed = 10;
    const auto sb = generate_building(spec);
    double own_sum = 0.0, other_sum = 0.0;
    std::size_t own_n = 0, other_n = 0;
    for (const auto& s : sb.building.samples)
        for (const auto& o : s.observations) {
            if (sb.aps[o.mac_id].floor == s.true_floor) {
                own_sum += o.rss_dbm;
                ++own_n;
            } else {
                other_sum += o.rss_dbm;
                ++other_n;
            }
        }
    ASSERT_GT(own_n, 0u);
    ASSERT_GT(other_n, 0u);
    EXPECT_GT(own_sum / static_cast<double>(own_n),
              other_sum / static_cast<double>(other_n) + 5.0);
}

TEST(generator, validation_of_specs) {
    building_spec bad;
    bad.num_floors = 1;
    EXPECT_THROW((void)generate_building(bad), std::invalid_argument);
    bad = building_spec{};
    bad.aps_per_floor = 0;
    EXPECT_THROW((void)generate_building(bad), std::invalid_argument);
    bad = building_spec{};
    bad.samples_per_floor = 0;
    EXPECT_THROW((void)generate_building(bad), std::invalid_argument);
    bad = building_spec{};
    bad.num_devices = 0;
    EXPECT_THROW((void)generate_building(bad), std::invalid_argument);
}

// ---------- spillover structure (Fig. 1) ----------

TEST(spillover, adjacent_floors_share_more_macs) {
    building_spec spec;
    spec.num_floors = 6;
    spec.samples_per_floor = 60;
    spec.seed = 11;
    const auto b = generate_building(spec).building;

    // MAC sets per floor (from scans).
    std::vector<std::set<std::uint32_t>> macs(b.num_floors);
    for (const auto& s : b.samples)
        for (const auto& o : s.observations)
            macs[static_cast<std::size_t>(s.true_floor)].insert(o.mac_id);

    auto shared = [&macs](std::size_t i, std::size_t j) {
        std::size_t cnt = 0;
        for (const auto m : macs[i]) cnt += macs[j].count(m);
        return cnt;
    };
    // adjacent floors share more MACs than floors two apart (Fig. 1(b), 5)
    std::size_t adj = 0, far = 0, pairs_adj = 0, pairs_far = 0;
    for (std::size_t f = 0; f + 1 < b.num_floors; ++f) {
        adj += shared(f, f + 1);
        ++pairs_adj;
    }
    for (std::size_t f = 0; f + 3 < b.num_floors; ++f) {
        far += shared(f, f + 3);
        ++pairs_far;
    }
    EXPECT_GT(static_cast<double>(adj) / pairs_adj, static_cast<double>(far) / pairs_far);
}

TEST(spillover, histogram_counts_every_detected_mac_once) {
    building_spec spec;
    spec.num_floors = 5;
    spec.samples_per_floor = 50;
    spec.seed = 12;
    const auto b = generate_building(spec).building;
    const auto hist = spillover_histogram(b);
    ASSERT_EQ(hist.size(), b.num_floors);
    std::set<std::uint32_t> detected;
    for (const auto& s : b.samples)
        for (const auto& o : s.observations) detected.insert(o.mac_id);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::size_t{0}), detected.size());
}

TEST(spillover, atrium_extends_the_tail) {
    building_spec closed;
    closed.num_floors = 8;
    closed.samples_per_floor = 60;
    closed.floor_width_m = 120.0;
    closed.floor_depth_m = 80.0;
    closed.aps_per_floor = 21;
    closed.seed = 13;
    building_spec open = closed;
    open.atrium = true;
    open.atrium_radius_m = 15.0;

    const auto hist_closed = spillover_histogram(generate_building(closed).building);
    const auto hist_open = spillover_histogram(generate_building(open).building);
    // MACs detected on ≥ 5 floors: the atrium must produce at least as many.
    std::size_t tail_closed = 0, tail_open = 0;
    for (std::size_t f = 4; f < 8; ++f) {
        tail_closed += hist_closed[f];
        tail_open += hist_open[f];
    }
    EXPECT_GT(tail_open, tail_closed);
}

// ---------- trajectory mode ----------

TEST(trajectories, produce_requested_counts_and_valid_building) {
    building_spec spec;
    spec.num_floors = 4;
    spec.samples_per_floor = 45;  // not a multiple of trajectory_length
    spec.mode = scan_mode::trajectories;
    spec.trajectory_length = 10;
    spec.seed = 21;
    const auto b = generate_building(spec).building;
    EXPECT_NO_THROW(b.validate());
    for (const std::size_t c : b.samples_per_floor()) EXPECT_EQ(c, 45u);
}

TEST(trajectories, consecutive_scans_share_device_and_overlap_heavily) {
    building_spec spec;
    spec.num_floors = 2;
    spec.samples_per_floor = 30;
    spec.mode = scan_mode::trajectories;
    spec.trajectory_length = 10;
    spec.trajectory_step_m = 2.0;
    spec.seed = 22;
    const auto b = generate_building(spec).building;

    // Within a walk the device is constant and consecutive scans (a couple
    // of metres apart) share most of their MAC sets; compare against random
    // cross-floor pairs.
    auto overlap = [](const data::rf_sample& a, const data::rf_sample& c) {
        std::set<std::uint32_t> sa, inter;
        for (const auto& o : a.observations) sa.insert(o.mac_id);
        for (const auto& o : c.observations)
            if (sa.count(o.mac_id)) inter.insert(o.mac_id);
        const std::size_t uni = sa.size() + c.observations.size() - inter.size();
        return uni == 0 ? 0.0 : static_cast<double>(inter.size()) / static_cast<double>(uni);
    };
    double consecutive = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i + 1 < 10; ++i) {  // first walk of floor 0
        if (b.samples[i].device_id == b.samples[i + 1].device_id) {
            consecutive += overlap(b.samples[i], b.samples[i + 1]);
            ++pairs;
        }
    }
    ASSERT_GT(pairs, 5u);  // the walk kept one device
    const double cross = overlap(b.samples[0], b.samples[45]);  // other floor
    EXPECT_GT(consecutive / static_cast<double>(pairs), cross);
}

TEST(trajectories, positions_stay_in_bounds_implicitly) {
    // Reflecting walls keep walks inside: every scan must observe at least
    // min_observations APs (a scan metres outside would see almost none),
    // and generation must not throw on an elongated footprint.
    building_spec spec;
    spec.num_floors = 2;
    spec.samples_per_floor = 60;
    spec.floor_width_m = 100.0;
    spec.floor_depth_m = 20.0;
    spec.mode = scan_mode::trajectories;
    spec.trajectory_length = 25;
    spec.trajectory_step_m = 4.0;
    spec.seed = 23;
    const auto b = generate_building(spec).building;
    for (const auto& s : b.samples) EXPECT_GE(s.observations.size(), spec.min_observations);
}

TEST(trajectories, pipeline_handles_trajectory_corpora) {
    building_spec spec;
    spec.num_floors = 3;
    spec.samples_per_floor = 60;
    spec.mode = scan_mode::trajectories;
    spec.model.path_loss_exponent = 3.3;
    spec.floor_width_m = 60.0;
    spec.floor_depth_m = 40.0;
    spec.seed = 24;
    const auto b = generate_building(spec).building;
    EXPECT_NO_THROW(b.validate());
    // spillover structure survives the correlated sampling
    const auto hist = spillover_histogram(b);
    std::size_t detected = 0;
    for (const auto h : hist) detected += h;
    EXPECT_GT(detected, b.num_macs / 2);
}

// ---------- relabeling (§VI protocols) ----------

TEST(relabel, random_floor_is_consistent) {
    building_spec spec;
    spec.seed = 14;
    auto b = generate_building(spec).building;
    util::rng gen(99);
    const int floor = relabel_random_floor(b, gen);
    EXPECT_EQ(b.labeled_floor, floor);
    EXPECT_EQ(b.samples[b.labeled_sample].true_floor, floor);
    EXPECT_NO_THROW(b.validate());
}

TEST(relabel, specific_floor) {
    building_spec spec;
    spec.num_floors = 4;
    spec.seed = 15;
    auto b = generate_building(spec).building;
    util::rng gen(100);
    relabel_floor(b, 2, gen);
    EXPECT_EQ(b.labeled_floor, 2);
    EXPECT_EQ(b.samples[b.labeled_sample].true_floor, 2);
    EXPECT_THROW(relabel_floor(b, 9, gen), std::invalid_argument);
}

// ---------- corpora ----------

TEST(corpus, microsoft_floor_distribution_matches_fig7) {
    const auto floors = microsoft_floor_counts(152);
    EXPECT_EQ(floors.size(), 152u);
    std::vector<std::size_t> counts(11, 0);
    for (const std::size_t f : floors) {
        ASSERT_GE(f, 3u);
        ASSERT_LE(f, 10u);
        ++counts[f];
    }
    // monotone-decaying shape: 3-floor buildings are the most common
    EXPECT_GT(counts[3], counts[5]);
    EXPECT_GT(counts[5], counts[7]);
    EXPECT_GT(counts[7], counts[10]);
    EXPECT_GE(counts[10], 1u);  // tail present
}

TEST(corpus, small_corpus_still_representative) {
    const auto floors = microsoft_floor_counts(8);
    EXPECT_EQ(floors.size(), 8u);
    EXPECT_EQ(floors.front(), 3u);  // low-rise always present
}

TEST(corpus, microsoft_builder_produces_valid_buildings) {
    const auto corpus = make_microsoft_corpus(3, 25, 77);
    EXPECT_EQ(corpus.name, "Microsoft");
    EXPECT_EQ(corpus.buildings.size(), 3u);
    for (const auto& b : corpus.buildings) EXPECT_NO_THROW(b.validate());
}

TEST(corpus, malls_builder_matches_paper_setup) {
    const auto corpus = make_malls_corpus(25, 78);
    EXPECT_EQ(corpus.name, "Ours");
    ASSERT_EQ(corpus.buildings.size(), 3u);
    EXPECT_EQ(corpus.buildings[0].num_floors, 5u);
    EXPECT_EQ(corpus.buildings[1].num_floors, 5u);
    EXPECT_EQ(corpus.buildings[2].num_floors, 7u);
    for (const auto& b : corpus.buildings) EXPECT_NO_THROW(b.validate());
}

}  // namespace
