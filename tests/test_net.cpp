// Tests for the network front door: frame reassembly from arbitrary
// chunking (including one byte at a time), hostile network input
// (mid-frame disconnects, garbage streams, slow readers), the
// per-connection correlation-id remap under deliberately colliding ids,
// typed admission shedding against a paused backend, graceful drain
// semantics, the plaintext metrics probe, and the federated backend
// behind the same socket.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/client.hpp"
#include "api/codec.hpp"
#include "api/message.hpp"
#include "api/server.hpp"
#include "data/corpus_store.hpp"
#include "federation/federated_server.hpp"
#include "net/socket.hpp"
#include "net/tcp_server.hpp"
#include "obs/trace.hpp"
#include "service/fault_plan.hpp"
#include "service/profiles.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone;

data::building tiny_building(std::size_t i) {
    sim::building_spec spec;
    spec.name = "net-";
    spec.name += std::to_string(i);
    spec.num_floors = 3;
    spec.samples_per_floor = 12;
    spec.aps_per_floor = 6;
    spec.seed = 1400 + i;
    return sim::generate_building(spec).building;
}

std::string identify_frame(std::uint64_t corr, std::size_t corpus_index, std::size_t which) {
    api::identify_building_request req;
    req.correlation_id = corr;
    req.has_index = true;
    req.corpus_index = corpus_index;
    req.b = tiny_building(which);
    return api::encode(api::request(req));
}

api::response decode_one(const std::string& frame) {
    const api::decode_result<api::response> r = api::decode_response(frame);
    EXPECT_TRUE(r.ok()) << (r.error ? r.error->message : "eof");
    return r.ok() ? *r.value : api::response(api::error_response{});
}

/// An api::server + tcp_server + loop thread, drained on destruction.
class test_front {
public:
    explicit test_front(net::tcp_server_config cfg = {}, bool paused = false) {
        api::server_config scfg;
        scfg.service = service::quick_profile(11, 1);
        srv_ = std::make_unique<api::server>(scfg);
        if (paused) srv_->backing_service().pause();
        front_ = std::make_unique<net::tcp_server>(net::make_backend(*srv_), std::move(cfg));
        loop_ = std::thread([this] { front_->run(); });
    }

    ~test_front() {
        front_->drain();
        loop_.join();
    }

    [[nodiscard]] net::tcp_server& front() { return *front_; }
    [[nodiscard]] api::server& server() { return *srv_; }
    [[nodiscard]] std::uint16_t port() const { return front_->port(); }

private:
    std::unique_ptr<api::server> srv_;
    std::unique_ptr<net::tcp_server> front_;
    std::thread loop_;
};

/// Read everything until EOF off a raw (non-framed) connection.
std::string slurp(int fd) {
    std::string out;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) return out;
        out.append(chunk, static_cast<std::size_t>(n));
    }
}

// --- frame_splitter ----------------------------------------------------------

TEST(FrameSplitter, ReassemblesFromSingleByteChunks) {
    const std::string a = api::encode(api::request(api::get_stats_request{7}));
    const std::string b = api::encode(api::request(api::flush_request{8}));
    const std::string stream = a + b;
    api::frame_splitter split;
    std::vector<std::string> frames;
    for (const char c : stream) {
        split.append(std::string_view(&c, 1));
        while (std::optional<std::string> f = split.next()) frames.push_back(*f);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], a);
    EXPECT_EQ(frames[1], b);
    EXPECT_TRUE(split.at_boundary());
    EXPECT_FALSE(split.error());
}

TEST(FrameSplitter, EveryPrefixSplitYieldsTheSameFrames) {
    const std::string a = api::encode(api::request(api::cancel_job_request{3, 99}));
    const std::string b = api::encode(api::request(api::get_stats_request{4}));
    const std::string stream = a + b;
    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        api::frame_splitter split;
        split.append(std::string_view(stream).substr(0, cut));
        split.append(std::string_view(stream).substr(cut));
        std::vector<std::string> frames;
        while (std::optional<std::string> f = split.next()) frames.push_back(*f);
        ASSERT_EQ(frames.size(), 2u) << "cut at " << cut;
        EXPECT_EQ(frames[0], a) << "cut at " << cut;
        EXPECT_EQ(frames[1], b) << "cut at " << cut;
    }
}

TEST(FrameSplitter, BadMagicIsFatalImmediately) {
    api::frame_splitter split;
    split.append("GARBAGE STREAM");
    EXPECT_FALSE(split.next().has_value());
    ASSERT_TRUE(split.error().has_value());
    EXPECT_EQ(split.error()->code, api::error_code::bad_magic);
}

TEST(FrameSplitter, OversizedLengthRejectedBeforeBuffering) {
    // Hand-craft a header declaring a payload the codec bound forbids.
    std::string header = "FIS1";
    const auto push_u32 = [&header](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) header.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    push_u32(api::k_schema_version);
    header.push_back(1);  // tag lo
    header.push_back(0);  // tag hi
    push_u32(static_cast<std::uint32_t>(api::k_max_payload + 1));
    api::frame_splitter split;
    split.append(header);
    EXPECT_FALSE(split.next().has_value());
    ASSERT_TRUE(split.error().has_value());
    EXPECT_EQ(split.error()->code, api::error_code::oversized);
}

// --- hostile network input ---------------------------------------------------

TEST(TcpServer, ByteAtATimeDeliveryStillDecodes) {
    test_front tf;
    net::frame_conn conn("127.0.0.1", tf.port());
    const std::string frame = identify_frame(21, 0, 0);
    for (const char c : frame) conn.send(std::string_view(&c, 1));
    conn.shutdown_write();
    const std::optional<std::string> reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    const api::response resp = decode_one(*reply);
    const auto* b = std::get_if<api::building_response>(&resp);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->correlation_id, 21u);
    EXPECT_TRUE(b->report.ok) << b->report.error;
    EXPECT_FALSE(conn.read_frame().has_value());  // clean EOF after the answer
}

TEST(TcpServer, MidFrameDisconnectLeavesServerServing) {
    test_front tf;
    {
        net::frame_conn conn("127.0.0.1", tf.port());
        const std::string frame = identify_frame(1, 0, 0);
        conn.send(std::string_view(frame).substr(0, frame.size() / 2));
        conn.close();  // vanish mid-frame
    }
    // The server must shrug that off and serve the next connection fully.
    net::frame_conn conn("127.0.0.1", tf.port());
    conn.send(identify_frame(2, 1, 1));
    conn.shutdown_write();
    const std::optional<std::string> reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    const api::response resp = decode_one(*reply);
    const auto* b = std::get_if<api::building_response>(&resp);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->correlation_id, 2u);
}

TEST(TcpServer, GarbageStreamGetsTypedErrorThenClose) {
    test_front tf;
    net::frame_conn conn("127.0.0.1", tf.port());
    // Starts with the magic (so it is framed mode), then declares an
    // absurd payload length — framing integrity is gone for good.
    conn.send("FIS1\xff\xff\xff\xff nonsense follows");
    bool saw_error = false;
    for (;;) {
        std::optional<std::string> reply;
        try {
            reply = conn.read_frame();
        } catch (const std::exception&) {
            break;  // server closed mid-read; the error frame already landed
        }
        if (!reply.has_value()) break;
        const api::response resp = decode_one(*reply);
        if (const auto* e = std::get_if<api::error_response>(&resp)) {
            saw_error = true;
            EXPECT_EQ(e->code, api::error_code::oversized);
        }
    }
    EXPECT_TRUE(saw_error);
}

TEST(TcpServer, SlowReaderIsShedNotBuffered) {
    net::tcp_server_config cfg;
    cfg.max_write_buffer = 512;  // far below one building_response frame
    test_front tf(cfg);
    net::frame_conn slow("127.0.0.1", tf.port());
    for (std::size_t j = 0; j < 4; ++j) slow.send(identify_frame(j + 1, j, j % 2));
    // Never read: the first response overflows the bound and the
    // connection is evicted (poll the counter; eviction happens on the
    // loop thread).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (tf.front().stats().connections_closed_slow == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(tf.front().stats().connections_closed_slow, 1u);

    // The admitted jobs still run to completion and are accounted — the
    // eviction drops frames, never bookkeeping.
    while (tf.front().stats().requests_completed < 4 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const net::tcp_server_stats s = tf.front().stats();
    EXPECT_EQ(s.requests_completed, 4u);
    EXPECT_GE(s.responses_dropped, 1u);
    EXPECT_EQ(s.requests_in_flight, 0u);

    // And the server keeps serving: the metrics probe (which always fits
    // its page regardless of the write bound) reports the eviction.
    net::socket_fd probe = net::connect_tcp("127.0.0.1", tf.port());
    net::send_all(probe.get(), "GET /metrics HTTP/1.0\r\n\r\n");
    const std::string page = slurp(probe.get());
    EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(page.find("fisone_net_connections_closed_slow_total 1"), std::string::npos);
}

// --- correlation-id isolation ------------------------------------------------

TEST(TcpServer, CollidingCorrelationIdsStayPerConnection) {
    constexpr std::size_t k_conns = 4;
    test_front tf;
    std::vector<std::string> names(k_conns);
    std::vector<std::uint64_t> corrs(k_conns, 0);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < k_conns; ++c) {
        threads.emplace_back([&, c] {
            net::frame_conn conn("127.0.0.1", tf.port());
            // Every connection uses correlation id 1 — the collision the
            // remap table exists for — but pins its own corpus index.
            conn.send(identify_frame(1, c, c));
            conn.shutdown_write();
            const std::optional<std::string> reply = conn.read_frame();
            if (!reply.has_value()) return;
            const api::decode_result<api::response> r = api::decode_response(*reply);
            if (!r.ok()) return;
            if (const auto* b = std::get_if<api::building_response>(&*r.value)) {
                corrs[c] = b->correlation_id;
                names[c] = b->report.name;
            }
        });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t c = 0; c < k_conns; ++c) {
        EXPECT_EQ(corrs[c], 1u) << "connection " << c;
        EXPECT_EQ(names[c], "net-" + std::to_string(c)) << "connection " << c;
    }
}

TEST(TcpServer, CancelUnknownTargetAnsweredLocally) {
    test_front tf;
    net::frame_conn conn("127.0.0.1", tf.port());
    conn.send(api::encode(api::request(api::cancel_job_request{5, 4242})));
    const std::optional<std::string> reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    const api::response resp = decode_one(*reply);
    const auto* c = std::get_if<api::cancel_response>(&resp);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->correlation_id, 5u);
    EXPECT_EQ(c->target_correlation_id, 4242u);  // echoed in *client* id space
    EXPECT_FALSE(c->accepted);
}

TEST(TcpServer, FlushOnIdleConnectionAnswersImmediately) {
    test_front tf;
    net::frame_conn conn("127.0.0.1", tf.port());
    conn.send(api::encode(api::request(api::flush_request{77})));
    const std::optional<std::string> reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    const api::response resp = decode_one(*reply);
    const auto* f = std::get_if<api::flush_response>(&resp);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->correlation_id, 77u);
}

// --- admission control and drain ---------------------------------------------

TEST(TcpServer, OverloadShedsWithTypedError) {
    net::tcp_server_config cfg;
    cfg.max_inflight_requests = 1;
    test_front tf(cfg, /*paused=*/true);  // nothing completes until resume
    net::frame_conn conn("127.0.0.1", tf.port());
    for (std::size_t j = 0; j < 4; ++j) conn.send(identify_frame(j + 1, j, j % 2));
    conn.shutdown_write();
    // 3 sheds arrive while the one admitted request is parked at the gate.
    std::size_t shed = 0;
    for (std::size_t got = 0; got < 3; ++got) {
        const std::optional<std::string> reply = conn.read_frame();
        ASSERT_TRUE(reply.has_value());
        const api::response resp = decode_one(*reply);
        const auto* e = std::get_if<api::error_response>(&resp);
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->code, api::error_code::overloaded);
        ++shed;
    }
    tf.server().backing_service().resume();
    const std::optional<std::string> reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(std::holds_alternative<api::building_response>(decode_one(*reply)));
    EXPECT_FALSE(conn.read_frame().has_value());  // all accounted, clean EOF
    EXPECT_EQ(shed, 3u);
    const net::tcp_server_stats s = tf.front().stats();
    EXPECT_EQ(s.requests_shed_overload, 3u);
    EXPECT_EQ(s.requests_admitted, 1u);
}

TEST(TcpServer, DrainFinishesInFlightAndShedsNewWork) {
    test_front tf(net::tcp_server_config{}, /*paused=*/true);
    net::frame_conn conn("127.0.0.1", tf.port());
    conn.send(identify_frame(1, 0, 0));  // admitted, parked at the gate
    // Wait until the request is admitted: a drain that lands first would
    // close the (still idle) connection before reading it.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (tf.front().stats().requests_admitted < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_EQ(tf.front().stats().requests_admitted, 1u);
    tf.front().drain();
    conn.send(identify_frame(2, 1, 1));  // arrives mid-drain: typed shed
    conn.shutdown_write();
    tf.server().backing_service().resume();

    bool saw_draining_shed = false, saw_result = false;
    while (std::optional<std::string> reply = conn.read_frame()) {
        const api::response resp = decode_one(*reply);
        if (const auto* e = std::get_if<api::error_response>(&resp)) {
            EXPECT_EQ(e->code, api::error_code::draining);
            EXPECT_EQ(e->correlation_id, 2u);
            saw_draining_shed = true;
        } else if (const auto* b = std::get_if<api::building_response>(&resp)) {
            EXPECT_EQ(b->correlation_id, 1u);
            saw_result = true;
        }
    }
    EXPECT_TRUE(saw_draining_shed);
    EXPECT_TRUE(saw_result);  // drain finished the in-flight request first
}

// --- metrics probe -----------------------------------------------------------

TEST(TcpServer, MetricsProbeSpeaksHttpAndRawText) {
    test_front tf;
    {
        net::frame_conn warm("127.0.0.1", tf.port());
        warm.send(identify_frame(1, 0, 0));
        warm.shutdown_write();
        while (warm.read_frame().has_value()) {}
    }
    {
        net::socket_fd fd = net::connect_tcp("127.0.0.1", tf.port());
        net::send_all(fd.get(), "GET /metrics HTTP/1.0\r\n\r\n");
        const std::string page = slurp(fd.get());
        EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos);
        EXPECT_NE(page.find("fisone_net_connections_accepted_total"), std::string::npos);
        EXPECT_NE(page.find("fisone_net_requests_admitted_total 1"), std::string::npos);
        EXPECT_NE(page.find("fisone_net_requests_shed_total{reason=\"overload\"}"),
                  std::string::npos);
        EXPECT_NE(page.find("fisone_service_jobs_submitted_total"), std::string::npos);
        EXPECT_NE(page.find("fisone_net_request_latency_seconds{quantile=\"0.99\"}"),
                  std::string::npos);
    }
    {
        net::socket_fd fd = net::connect_tcp("127.0.0.1", tf.port());
        net::send_all(fd.get(), "METRICS\n");
        const std::string page = slurp(fd.get());
        EXPECT_EQ(page.rfind("# HELP", 0), 0u);  // raw page, no HTTP envelope
        EXPECT_NE(page.find("fisone_net_connections_open"), std::string::npos);
    }
    {
        net::socket_fd fd = net::connect_tcp("127.0.0.1", tf.port());
        net::send_all(fd.get(), "GET /nope HTTP/1.0\r\n\r\n");
        const std::string page = slurp(fd.get());
        EXPECT_NE(page.find("404 Not Found"), std::string::npos);
    }
}

// --- tracing -----------------------------------------------------------------

/// Enables the span recorder for the test body, restores off+empty after.
class TcpServerTracing : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_tracing_enabled(false);
        obs::reset();
        obs::set_tracing_enabled(true);
    }
    void TearDown() override {
        obs::set_tracing_enabled(false);
        obs::reset();
    }
};

std::vector<std::string> span_names(const std::vector<obs::span_record>& spans) {
    std::vector<std::string> names;
    names.reserve(spans.size());
    for (const obs::span_record& s : spans) names.emplace_back(s.name ? s.name : "?");
    return names;
}

bool has_name(const std::vector<std::string>& names, const char* want) {
    for (const std::string& n : names)
        if (n == want) return true;
    return false;
}

/// The tentpole acceptance check: one request through a federated fleet
/// (2 stores × 2 backends) behind the TCP front door produces one
/// parent-linked span tree covering every instrumented layer.
TEST_F(TcpServerTracing, FederatedRequestProducesOneParentLinkedTrace) {
    const std::string base =
        (std::filesystem::temp_directory_path() / "fisone_test_net_trace").string();
    std::filesystem::remove_all(base);
    std::vector<std::string> dirs;
    for (std::size_t s = 0; s < 2; ++s) {
        data::corpus fleet;
        fleet.name = "trace-store-" + std::to_string(s);
        fleet.buildings.push_back(tiny_building(s));
        const std::string dir = base + "/store" + std::to_string(s);
        static_cast<void>(data::write_corpus_store(fleet, dir, 1));
        dirs.push_back(dir);
    }

    {
        federation::federation_config fcfg;
        fcfg.service = service::quick_profile(11, 1);
        fcfg.num_backends = 2;
        fcfg.store_dirs = dirs;
        federation::federated_server fed(fcfg);
        net::tcp_server front(net::make_backend(fed));
        std::thread loop([&front] { front.run(); });

        net::frame_conn conn("127.0.0.1", front.port());
        conn.send(identify_frame(9, 0, 0));
        conn.shutdown_write();
        const std::optional<std::string> reply = conn.read_frame();
        ASSERT_TRUE(reply.has_value());
        const api::response resp = decode_one(*reply);
        const auto* b = std::get_if<api::building_response>(&resp);
        ASSERT_NE(b, nullptr);
        EXPECT_TRUE(b->report.ok) << b->report.error;
        conn.close();
        front.drain();
        loop.join();
    }  // destroying the fleet joins its workers: every span has landed

    // Find the request's root span and pull its whole tree.
    const std::vector<obs::span_record> all = obs::snapshot();
    const obs::span_record* root = nullptr;
    for (const obs::span_record& s : all) {
        if (s.name != nullptr && std::string("net.request") == s.name) root = &s;
    }
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent_id, 0u);
    const std::vector<obs::span_record> trace = obs::spans_for_trace(root->trace_id);
    const std::vector<std::string> names = span_names(trace);

    // Every instrumented layer is present in this one trace: transport,
    // federation routing, API session, service queue/execute, and each
    // pipeline stage.
    for (const char* want :
         {"net.request", "net.dispatch", "federation.dispatch", "federation.route",
          "api.identify", "service.queue_wait", "service.execute",
          "pipeline.graph_build", "pipeline.gnn_embed", "pipeline.cluster",
          "pipeline.index", "service.report"}) {
        EXPECT_TRUE(has_name(names, want)) << "trace missing span " << want;
    }

    // And it is a single well-formed tree: exactly one root, every other
    // span's parent id resolves within the trace.
    std::size_t roots = 0;
    for (const obs::span_record& s : trace) roots += s.parent_id == 0 ? 1 : 0;
    EXPECT_EQ(roots, 1u);
    for (const obs::span_record& s : trace) {
        if (s.parent_id == 0) continue;
        bool linked = false;
        for (const obs::span_record& p : trace) linked |= p.span_id == s.parent_id;
        EXPECT_TRUE(linked) << "span " << (s.name ? s.name : "?")
                            << " has a dangling parent id";
    }
    std::filesystem::remove_all(base);
}

/// Colliding client correlation ids (both connections use id 1) go through
/// the per-connection remap — each request must still get its own complete,
/// distinct trace.
TEST_F(TcpServerTracing, CollidingCorrelationIdsGetDistinctTraces) {
    {
        test_front tf;
        for (std::size_t c = 0; c < 2; ++c) {
            net::frame_conn conn("127.0.0.1", tf.port());
            conn.send(identify_frame(1, c, c));
            conn.shutdown_write();
            const std::optional<std::string> reply = conn.read_frame();
            ASSERT_TRUE(reply.has_value());
            const api::response resp = decode_one(*reply);
            const auto* b = std::get_if<api::building_response>(&resp);
            ASSERT_NE(b, nullptr);
            EXPECT_EQ(b->correlation_id, 1u);  // client id space restored
        }
    }  // server teardown joins the workers: every span has landed

    const std::vector<obs::span_record> all = obs::snapshot();
    std::vector<std::uint64_t> request_traces;
    for (const obs::span_record& s : all) {
        if (s.name != nullptr && std::string("net.request") == s.name)
            request_traces.push_back(s.trace_id);
    }
    ASSERT_EQ(request_traces.size(), 2u);
    EXPECT_NE(request_traces[0], request_traces[1]);
    for (const std::uint64_t id : request_traces) {
        const std::vector<std::string> names = span_names(obs::spans_for_trace(id));
        EXPECT_TRUE(has_name(names, "api.identify")) << "trace 0x" << std::hex << id;
        EXPECT_TRUE(has_name(names, "service.execute")) << "trace 0x" << std::hex << id;
    }
}

TEST_F(TcpServerTracing, DumpTraceProbeSpeaksHttpAndRawText) {
    test_front tf;
    {
        net::frame_conn warm("127.0.0.1", tf.port());
        warm.send(identify_frame(1, 0, 0));
        warm.shutdown_write();
        while (warm.read_frame().has_value()) {}
    }
    {
        net::socket_fd fd = net::connect_tcp("127.0.0.1", tf.port());
        net::send_all(fd.get(), "GET /dump_trace HTTP/1.0\r\n\r\n");
        const std::string page = slurp(fd.get());
        EXPECT_NE(page.find("HTTP/1.0 200 OK"), std::string::npos);
        EXPECT_NE(page.find("Content-Type: application/json"), std::string::npos);
        EXPECT_NE(page.find("\"traceFormatVersion\":\"fisone-trace/v1\""),
                  std::string::npos);
        EXPECT_NE(page.find("\"name\":\"net.request\""), std::string::npos);
    }
    {
        net::socket_fd fd = net::connect_tcp("127.0.0.1", tf.port());
        net::send_all(fd.get(), "DUMP_TRACE\n");
        const std::string page = slurp(fd.get());
        EXPECT_EQ(page.rfind("{\"traceFormatVersion\"", 0), 0u);  // raw JSON
    }
}

TEST_F(TcpServerTracing, MetricsExposeBuildInfoUptimeBackendCachesAndStages) {
    test_front tf;
    {
        net::frame_conn warm("127.0.0.1", tf.port());
        warm.send(identify_frame(1, 0, 0));
        warm.shutdown_write();
        while (warm.read_frame().has_value()) {}
    }
    // Wait out the worker's span teardown so the stage table has the full
    // ladder before the scrape (wait_all returns after the job body exits).
    tf.server().backing_service().wait_all();
    net::socket_fd fd = net::connect_tcp("127.0.0.1", tf.port());
    net::send_all(fd.get(), "GET /metrics HTTP/1.0\r\n\r\n");
    const std::string page = slurp(fd.get());
    EXPECT_NE(page.find("fisone_build_info{version=\""), std::string::npos);
    EXPECT_NE(page.find("fisone_uptime_seconds"), std::string::npos);
    EXPECT_NE(page.find("fisone_cache_evictions_total"), std::string::npos);
    EXPECT_NE(page.find("fisone_backend_cache_hits_total{backend=\"0\"}"),
              std::string::npos);
    EXPECT_NE(page.find("fisone_backend_cache_entries{backend=\"0\"}"),
              std::string::npos);
    EXPECT_NE(page.find("fisone_stage_seconds{stage=\"api.identify\",quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(page.find("fisone_stage_seconds{stage=\"pipeline.gnn_embed\","),
              std::string::npos);
    EXPECT_NE(page.find("fisone_stage_seconds_count{stage=\"service.execute\"}"),
              std::string::npos);
}

TEST_F(TcpServerTracing, SlowRequestLogCarriesSpanBreakdown) {
    std::mutex log_m;
    std::vector<std::string> lines;
    net::tcp_server_config cfg;
    cfg.slow_request_seconds = 1e-9;  // everything is slow
    cfg.slow_log = [&](const std::string& line) {
        const std::lock_guard<std::mutex> lock(log_m);
        lines.push_back(line);
    };
    test_front tf(cfg);
    {
        net::frame_conn conn("127.0.0.1", tf.port());
        conn.send(identify_frame(42, 0, 0));
        conn.shutdown_write();
        while (conn.read_frame().has_value()) {}
    }
    const std::lock_guard<std::mutex> lock(log_m);
    ASSERT_EQ(lines.size(), 1u);
    const std::string& line = lines[0];
    EXPECT_EQ(line.rfind("{\"slow_request\":{", 0), 0u);
    EXPECT_NE(line.find("\"correlation_id\":42"), std::string::npos);
    EXPECT_NE(line.find("\"seconds\":"), std::string::npos);
    EXPECT_NE(line.find("\"trace_id\":\"0x"), std::string::npos);
    EXPECT_NE(line.find("\"spans\":["), std::string::npos);
    // The breakdown carries every span closed by completion time; the
    // still-open service.execute cannot be in it, the pipeline stages are.
    EXPECT_NE(line.find("\"name\":\"pipeline.gnn_embed\""), std::string::npos);
}

// --- federated backend -------------------------------------------------------

TEST(TcpServer, FrontsAFederatedFleet) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "fisone_test_net_fed").string();
    std::filesystem::remove_all(dir);
    data::corpus fleet;
    fleet.name = "net-fed";
    for (std::size_t i = 0; i < 2; ++i) fleet.buildings.push_back(tiny_building(i));
    static_cast<void>(data::write_corpus_store(fleet, dir, 1));

    federation::federation_config fcfg;
    fcfg.service = service::quick_profile(11, 1);
    fcfg.num_backends = 2;
    fcfg.store_dirs = {dir};
    federation::federated_server fed(fcfg);
    net::tcp_server front(net::make_backend(fed));
    std::thread loop([&front] { front.run(); });

    net::frame_conn conn("127.0.0.1", front.port());
    conn.send(api::encode(api::request(api::get_stats_request{6})));
    const std::optional<std::string> reply = conn.read_frame();
    ASSERT_TRUE(reply.has_value());
    const api::response resp = decode_one(*reply);
    const auto* s = std::get_if<api::stats_response>(&resp);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->correlation_id, 6u);
    conn.close();

    front.drain();
    loop.join();
    std::filesystem::remove_all(dir);
}

TEST(TcpServer, DrainRacesCircuitBrokenBackendWithoutHanging) {
    // A protected fleet whose backend 0 always fails transiently: in-flight
    // requests keep retrying/failing over while the front door drains (the
    // path serve_tcp's SIGTERM waiter takes). Drain must still account for
    // every admitted request — answered ok after failover, never hung —
    // with backend 0's breaker tripping mid-drain. Runs under the TSan CI
    // tier via the test_net filter.
    federation::federation_config fcfg;
    fcfg.service = service::quick_profile(11, 1);
    fcfg.num_backends = 2;
    fcfg.policy = federation::routing_policy::round_robin;
    fcfg.fault_plans = service::parse_fault_plans("0:fail_every=1", 2);
    fcfg.fault_tolerance.breaker_cooldown = std::chrono::milliseconds(60000);
    federation::federated_server fed(fcfg);
    net::tcp_server front(net::make_backend(fed));
    std::thread loop([&front] { front.run(); });

    net::frame_conn conn("127.0.0.1", front.port());
    constexpr std::size_t n = 6;
    for (std::size_t i = 0; i < n; ++i) conn.send(identify_frame(i + 1, i, i));
    while (front.stats().requests_admitted < n)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    front.drain();  // races the retry/failover machinery

    std::size_t ok = 0, errors = 0;
    while (ok + errors < n) {
        const std::optional<std::string> reply = conn.read_frame();
        if (!reply) break;  // server closed before answering everything
        const api::response resp = decode_one(*reply);
        if (std::holds_alternative<api::building_response>(resp))
            ++ok;
        else if (std::holds_alternative<api::error_response>(resp))
            ++errors;
    }
    EXPECT_EQ(ok, n) << errors << " typed errors";  // failover rescued every request
    loop.join();

    const auto health = fed.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_GE(health->retries, 1u);  // backend 0 sent every request it saw back out
    EXPECT_FALSE(health->backend_up[0]);

    // The scrapeable page carries the new federation families.
    const std::string page = front.metrics_text();
    EXPECT_NE(page.find("fisone_federation_retries_total"), std::string::npos);
    EXPECT_NE(page.find("fisone_federation_failovers_total"), std::string::npos);
    EXPECT_NE(page.find("fisone_backend_up{backend=\"0\"} 0"), std::string::npos);
    EXPECT_NE(page.find("fisone_backend_up{backend=\"1\"} 1"), std::string::npos);
}

// --- live telemetry streaming ------------------------------------------------

TEST(TcpServer, SubscribeStatsStreamsWindowedTelemetry) {
    net::tcp_server_config cfg;
    cfg.telemetry_window_ms = 50;
    test_front tf(std::move(cfg));

    net::frame_conn conn("127.0.0.1", tf.port());
    api::subscribe_stats_request sub;
    sub.correlation_id = 42;
    sub.interval_ms = 0;  // every window
    conn.send(api::encode(api::request(sub)));

    // The subscription is acked before any push.
    std::optional<std::string> frame = conn.read_frame();
    ASSERT_TRUE(frame.has_value());
    const api::response ack = decode_one(*frame);
    ASSERT_TRUE(std::holds_alternative<api::watch_ack_response>(ack));
    EXPECT_EQ(std::get<api::watch_ack_response>(ack).correlation_id, 42u);
    EXPECT_TRUE(std::get<api::watch_ack_response>(ack).active);

    // One identify on a second connection must land in some window.
    {
        net::frame_conn work("127.0.0.1", tf.port());
        work.send(identify_frame(1, 0, 0));
        work.shutdown_write();
        while (work.read_frame()) {
        }
    }

    // Updates stream in with strictly advancing window sequence numbers;
    // keep reading until the identify's admission and latency show up.
    std::uint64_t prev_seq = 0;
    std::uint64_t admitted = 0;
    std::uint64_t latency_count = 0;
    double latency_sum = 0.0;
    bool seen = false;
    for (int i = 0; i < 200 && !seen; ++i) {
        frame = conn.read_frame();
        ASSERT_TRUE(frame.has_value());
        const api::response r = decode_one(*frame);
        ASSERT_TRUE(std::holds_alternative<api::stats_update_response>(r));
        const auto& u = std::get<api::stats_update_response>(r);
        EXPECT_EQ(u.correlation_id, 42u);
        EXPECT_GT(u.window_seq, prev_seq);
        prev_seq = u.window_seq;
        EXPECT_GT(u.window_seconds, 0.0);
        admitted += u.admitted;
        latency_count += u.latency_count;
        latency_sum += u.latency_sum;
        seen = admitted >= 1 && latency_count >= 1;
    }
    EXPECT_TRUE(seen) << "identify never appeared in any streamed window";
    EXPECT_GT(latency_sum, 0.0);

    // Unsubscribe is acked inactive; the ack may trail in-flight updates.
    api::subscribe_stats_request unsub;
    unsub.correlation_id = 43;
    unsub.subscribe = false;
    conn.send(api::encode(api::request(unsub)));
    bool acked = false;
    for (int i = 0; i < 200 && !acked; ++i) {
        frame = conn.read_frame();
        ASSERT_TRUE(frame.has_value());
        const api::response r = decode_one(*frame);
        if (const auto* a = std::get_if<api::watch_ack_response>(&r)) {
            EXPECT_EQ(a->correlation_id, 43u);
            EXPECT_FALSE(a->active);
            acked = true;
        }
    }
    EXPECT_TRUE(acked);

    const net::tcp_server_stats s = tf.front().stats();
    EXPECT_GT(s.stats_pushes_sent, 0u);
    EXPECT_GT(s.telemetry_ticks, 0u);
    EXPECT_EQ(s.stats_subscribers, 0u);  // lifecycle balanced after unsubscribe
    conn.shutdown_write();
}

TEST(TcpServer, TelemetryDisabledNeverTicksOrPushes) {
    net::tcp_server_config cfg;
    cfg.telemetry_window_ms = 0;  // epoll blocks indefinitely, as before
    test_front tf(std::move(cfg));

    net::frame_conn conn("127.0.0.1", tf.port());
    api::subscribe_stats_request sub;
    sub.correlation_id = 7;
    sub.interval_ms = 0;
    conn.send(api::encode(api::request(sub)));
    const std::optional<std::string> frame = conn.read_frame();
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(std::holds_alternative<api::watch_ack_response>(decode_one(*frame)));

    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    const net::tcp_server_stats s = tf.front().stats();
    EXPECT_EQ(s.telemetry_ticks, 0u);
    EXPECT_EQ(s.stats_pushes_sent, 0u);
    EXPECT_EQ(s.stats_subscribers, 1u);  // installed, just never fed
    conn.shutdown_write();
}

}  // namespace
