// Tests for the tracing subsystem: the disabled path records nothing and
// installs no context, nested scoped_spans parent-link correctly, a
// cross-thread context_guard stitches worker spans into the submitting
// trace, ring wrap drops oldest records without corrupting survivors,
// the Chrome trace-event dump is well-formed, stage statistics accumulate
// exact percentiles, disabling tracing keeps the recorded tape readable,
// and — the observe-don't-steer contract — NDJSON out of the wire-framed
// API server is byte-identical with tracing on and off.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "api/server.hpp"
#include "obs/trace.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone;

/// Every test leaves the global recorder how it found it: off and empty.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_tracing_enabled(false);
        obs::reset();
    }
    void TearDown() override {
        obs::set_tracing_enabled(false);
        obs::reset();
        obs::set_ring_capacity(16384);
    }
};

const obs::span_record* find_span(const std::vector<obs::span_record>& spans,
                                  const std::string& name) {
    for (const obs::span_record& s : spans) {
        if (s.name != nullptr && name == s.name) return &s;
    }
    return nullptr;
}

data::building tiny_building(std::size_t i) {
    sim::building_spec spec;
    spec.name = "obs-" + std::to_string(i);
    spec.num_floors = 3;
    spec.samples_per_floor = 12;
    spec.aps_per_floor = 6;
    spec.seed = 2200 + i;
    return sim::generate_building(spec).building;
}

std::string run_corpus_ndjson(std::size_t buildings) {
    api::server_config cfg;
    cfg.service.pipeline.gnn.embedding_dim = 8;
    cfg.service.pipeline.gnn.epochs = 2;
    cfg.service.pipeline.num_threads = 1;
    cfg.service.seed = 5;
    cfg.enable_cache = false;
    api::server srv(cfg);
    api::client cli(srv);
    for (std::size_t i = 0; i < buildings; ++i)
        static_cast<void>(cli.identify(tiny_building(i), i));
    static_cast<void>(cli.flush());
    std::ostringstream out;
    service::export_input_order(out, cli.reports());
    return out.str();
}

// --- disabled path -----------------------------------------------------------

TEST_F(ObsTest, DisabledSpansRecordNothingAndInstallNoContext) {
    ASSERT_FALSE(obs::tracing_enabled());
    {
        obs::scoped_span span("outer");
        EXPECT_FALSE(obs::current_context().active());
        EXPECT_FALSE(span.context().active());
        obs::scoped_span inner("inner");
        EXPECT_FALSE(obs::current_context().active());
    }
    EXPECT_EQ(obs::emit_child_span("orphan", obs::current_context(), 1, 2), 0u);
    const obs::trace_stats st = obs::stats();
    EXPECT_EQ(st.recorded, 0u);
    EXPECT_EQ(st.dropped, 0u);
    EXPECT_TRUE(obs::snapshot().empty());
    EXPECT_TRUE(obs::stage_stats().empty());
}

// --- parentage ---------------------------------------------------------------

TEST_F(ObsTest, NestedSpansLinkChildToParentWithinOneTrace) {
    obs::set_tracing_enabled(true);
    {
        obs::scoped_span outer("outer");
        ASSERT_TRUE(outer.context().active());
        EXPECT_EQ(obs::current_context().span_id, outer.context().span_id);
        obs::scoped_span inner("inner");
        EXPECT_EQ(obs::current_context().span_id, inner.context().span_id);
        EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
    }
    EXPECT_FALSE(obs::current_context().active());  // restored after both ended

    const std::vector<obs::span_record> spans = obs::snapshot();
    ASSERT_EQ(spans.size(), 2u);
    const obs::span_record* outer = find_span(spans, "outer");
    const obs::span_record* inner = find_span(spans, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->parent_id, 0u);  // rooted a fresh trace
    EXPECT_EQ(inner->parent_id, outer->span_id);
    EXPECT_EQ(inner->trace_id, outer->trace_id);
    EXPECT_LE(outer->start_ns, inner->start_ns);
    EXPECT_GE(outer->dur_ns, inner->dur_ns);
}

TEST_F(ObsTest, SeparateRootsGetSeparateTraces) {
    obs::set_tracing_enabled(true);
    { obs::scoped_span a("a"); }
    { obs::scoped_span b("b"); }
    const std::vector<obs::span_record> spans = obs::snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_NE(spans[0].trace_id, spans[1].trace_id);
}

TEST_F(ObsTest, ContextGuardCarriesTraceAcrossThreads) {
    obs::set_tracing_enabled(true);
    obs::trace_context submitted;
    {
        obs::scoped_span submit("submit");
        submitted = submit.context();
        std::thread worker([submitted] {
            obs::context_guard guard(submitted);
            obs::scoped_span work("work");
        });
        worker.join();
    }
    const std::vector<obs::span_record> spans =
        obs::spans_for_trace(submitted.trace_id);
    ASSERT_EQ(spans.size(), 2u);
    const obs::span_record* submit = find_span(spans, "submit");
    const obs::span_record* work = find_span(spans, "work");
    ASSERT_NE(submit, nullptr);
    ASSERT_NE(work, nullptr);
    EXPECT_EQ(work->parent_id, submit->span_id);
    EXPECT_NE(work->tid, submit->tid);  // distinct emitting rings
}

TEST_F(ObsTest, InactiveContextGuardIsANoOp) {
    obs::set_tracing_enabled(true);
    obs::scoped_span outer("outer");
    const std::uint64_t before = obs::current_context().span_id;
    {
        obs::context_guard guard(obs::trace_context{});  // inactive
        EXPECT_EQ(obs::current_context().span_id, before);
    }
    EXPECT_EQ(obs::current_context().span_id, before);
}

// --- ring wrap ---------------------------------------------------------------

TEST_F(ObsTest, RingWrapDropsOldestKeepsNewestIntact) {
    obs::set_ring_capacity(8);
    obs::set_tracing_enabled(true);
    for (int i = 0; i < 20; ++i) {
        obs::scoped_span span("wrap");
    }
    const obs::trace_stats st = obs::stats();
    EXPECT_EQ(st.recorded, 8u);
    EXPECT_EQ(st.dropped, 12u);
    const std::vector<obs::span_record> spans = obs::snapshot();
    ASSERT_EQ(spans.size(), 8u);
    // Survivors are the 12 oldest dropped: the resident 8 must be strictly
    // increasing span ids (records never tear or interleave on wrap) and be
    // the latest ones minted.
    for (std::size_t i = 1; i < spans.size(); ++i) {
        EXPECT_LT(spans[i - 1].span_id, spans[i].span_id);
        EXPECT_STREQ(spans[i].name, "wrap");
    }
    // Stage stats see every span, wrap or not: the tape is bounded, the
    // aggregates are not.
    const std::vector<obs::stage_snapshot> stages = obs::stage_stats();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].count, 20u);
}

// --- lifecycle ---------------------------------------------------------------

TEST_F(ObsTest, DisablingKeepsTapeReadableAndReenablingAppends) {
    obs::set_tracing_enabled(true);
    { obs::scoped_span span("first"); }
    obs::set_tracing_enabled(false);
    { obs::scoped_span span("ignored"); }  // off: not recorded
    EXPECT_EQ(obs::snapshot().size(), 1u);
    obs::set_tracing_enabled(true);
    { obs::scoped_span span("second"); }
    const std::vector<obs::span_record> spans = obs::snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_NE(find_span(spans, "first"), nullptr);
    EXPECT_NE(find_span(spans, "second"), nullptr);
    EXPECT_EQ(find_span(spans, "ignored"), nullptr);
}

TEST_F(ObsTest, ResetDropsTapeAndStages) {
    obs::set_tracing_enabled(true);
    { obs::scoped_span span("gone"); }
    obs::reset();
    EXPECT_TRUE(obs::snapshot().empty());
    EXPECT_TRUE(obs::stage_stats().empty());
    EXPECT_TRUE(obs::tracing_enabled());  // reset leaves the switch alone
    { obs::scoped_span span("fresh"); }
    EXPECT_EQ(obs::snapshot().size(), 1u);
}

// --- exports -----------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceDumpIsWellFormed) {
    obs::set_tracing_enabled(true);
    {
        obs::scoped_span outer("outer");
        obs::scoped_span inner("inner");
    }
    const std::string json = obs::chrome_trace_json();
    // First key is the format version — consumers key off it before parsing.
    EXPECT_EQ(json.rfind("{\"traceFormatVersion\":\"fisone-trace/v1\"", 0), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"recorded\":2"), std::string::npos);
    EXPECT_EQ(json.back(), '}');
    // Balanced braces/brackets — cheap structural sanity without a parser
    // (no string in the dump contains braces; names are literals, ids hex).
    int braces = 0, brackets = 0;
    for (const char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST_F(ObsTest, EmptyTapeStillDumpsValidJson) {
    const std::string json = obs::chrome_trace_json();
    EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
    EXPECT_NE(json.find("\"recorded\":0"), std::string::npos);
}

TEST_F(ObsTest, StageStatsAccumulateExactPercentiles) {
    obs::set_tracing_enabled(true);
    for (int i = 0; i < 10; ++i) {
        obs::scoped_span span("stage.a");
    }
    { obs::scoped_span span("stage.b"); }
    const std::vector<obs::stage_snapshot> stages = obs::stage_stats();
    ASSERT_EQ(stages.size(), 2u);  // sorted by name (map order)
    EXPECT_EQ(stages[0].stage, "stage.a");
    EXPECT_EQ(stages[0].count, 10u);
    EXPECT_GE(stages[0].p99, stages[0].p50);
    EXPECT_GT(stages[0].total_seconds, 0.0);
    EXPECT_EQ(stages[1].stage, "stage.b");
    EXPECT_EQ(stages[1].count, 1u);
}

// --- the observe-don't-steer contract ---------------------------------------

TEST_F(ObsTest, NdjsonByteIdenticalWithTracingOnAndOff) {
    const std::string off = run_corpus_ndjson(2);
    obs::set_tracing_enabled(true);
    const std::string on = run_corpus_ndjson(2);
    obs::set_tracing_enabled(false);
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(off, on);
    // And the traced run actually instrumented the pipeline: the full stage
    // ladder is present, service and pipeline layers both.
    const std::vector<obs::stage_snapshot> stages = obs::stage_stats();
    std::vector<std::string> names;
    names.reserve(stages.size());
    for (const obs::stage_snapshot& s : stages) names.push_back(s.stage);
    for (const char* expect :
         {"api.identify", "service.queue_wait", "service.execute",
          "pipeline.graph_build", "pipeline.gnn_embed", "pipeline.cluster",
          "pipeline.index", "pipeline.export", "service.report"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end())
            << "missing stage " << expect;
    }
}

}  // namespace
