// Tests for src/baselines: shared feature/adjacency helpers, the METIS-style
// partitioner, MDS, and smoke + quality checks for SDCN and DAEGC.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/daegc.hpp"
#include "baselines/graph_features.hpp"
#include "baselines/mds.hpp"
#include "baselines/metis_partitioner.hpp"
#include "baselines/sdcn.hpp"
#include "eval/metrics.hpp"
#include "graph/bipartite_graph.hpp"
#include "data/dataset_io.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone;

const data::building& easy_building() {
    static const data::building b = [] {
        sim::building_spec spec;
        spec.num_floors = 3;
        spec.samples_per_floor = 50;
        spec.aps_per_floor = 12;
        spec.model.path_loss_exponent = 3.3;
        spec.floor_width_m = 60.0;
        spec.floor_depth_m = 40.0;
        spec.seed = 61;
        return sim::generate_building(spec).building;
    }();
    return b;
}

std::vector<int> truths(const data::building& b) {
    std::vector<int> t;
    t.reserve(b.samples.size());
    for (const auto& s : b.samples) t.push_back(s.true_floor);
    return t;
}

void expect_valid_labels(const std::vector<int>& labels, std::size_t n, std::size_t k) {
    ASSERT_EQ(labels.size(), n);
    for (const int l : labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, static_cast<int>(k));
    }
}

// ---------- shared helpers ----------

TEST(graph_features, feature_matrix_layout) {
    const auto& b = easy_building();
    const auto g = graph::bipartite_graph::from_building(b);
    const auto x = baselines::node_features(b, g);
    EXPECT_EQ(x.rows(), g.num_nodes());
    EXPECT_EQ(x.cols(), g.num_macs());
    // MAC nodes are one-hot
    for (std::size_t k = 0; k < std::min<std::size_t>(g.num_macs(), 5); ++k) {
        double sum = 0.0;
        for (std::size_t j = 0; j < g.num_macs(); ++j) sum += x(k, j);
        EXPECT_DOUBLE_EQ(sum, 1.0);
        EXPECT_DOUBLE_EQ(x(k, k), 1.0);
    }
    // sample features in [0, 1]
    for (std::size_t i = 0; i < 5; ++i) {
        const std::size_t row = g.sample_node(i);
        for (std::size_t j = 0; j < g.num_macs(); ++j) {
            EXPECT_GE(x(row, j), 0.0);
            EXPECT_LE(x(row, j), 1.0);
        }
    }
}

TEST(graph_features, normalized_adjacency_is_symmetric_operator) {
    const auto& b = easy_building();
    const auto g = graph::bipartite_graph::from_building(b);
    const auto adj = baselines::normalized_adjacency(g);
    ASSERT_EQ(adj.size(), g.num_nodes());
    // Â entries: Â[u][v] must equal Â[v][u]
    for (std::size_t u = 0; u < 10; ++u)
        for (const auto& [v, w] : adj[u]) {
            bool found = false;
            for (const auto& [uu, ww] : adj[v])
                if (uu == u) {
                    EXPECT_NEAR(w, ww, 1e-12);
                    found = true;
                }
            EXPECT_TRUE(found);
        }
}

TEST(graph_features, student_t_rows_are_distributions) {
    linalg::matrix z{{0.0, 0.0}, {1.0, 1.0}, {4.0, 4.0}};
    linalg::matrix mu{{0.0, 0.0}, {4.0, 4.0}};
    const auto q = baselines::student_t_assignment(z, mu);
    for (std::size_t i = 0; i < q.rows(); ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < q.cols(); ++j) sum += q(i, j);
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
    // point 0 prefers centroid 0; point 2 prefers centroid 1
    EXPECT_GT(q(0, 0), q(0, 1));
    EXPECT_GT(q(2, 1), q(2, 0));
}

TEST(graph_features, target_distribution_sharpens) {
    linalg::matrix q{{0.7, 0.3}, {0.6, 0.4}};
    const auto p = baselines::target_distribution(q);
    for (std::size_t i = 0; i < 2; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < 2; ++j) sum += p(i, j);
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
    EXPECT_GT(p(0, 0), q(0, 0));  // dominant assignment grows
}

// ---------- METIS ----------

TEST(metis, partitions_two_cliques_cleanly) {
    // Two 8-cliques joined by a single weak edge: the partitioner must cut
    // the bridge.
    const std::size_t n = 16;
    std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(n);
    auto connect = [&adj](std::uint32_t a, std::uint32_t b, double w) {
        adj[a].emplace_back(b, w);
        adj[b].emplace_back(a, w);
    };
    for (std::uint32_t i = 0; i < 8; ++i)
        for (std::uint32_t j = i + 1; j < 8; ++j) connect(i, j, 10.0);
    for (std::uint32_t i = 8; i < 16; ++i)
        for (std::uint32_t j = i + 1; j < 16; ++j) connect(i, j, 10.0);
    connect(0, 8, 0.1);

    const auto part = baselines::metis_partition(adj, 2);
    expect_valid_labels(part, n, 2);
    for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(part[i], part[0]);
    for (std::size_t i = 9; i < 16; ++i) EXPECT_EQ(part[i], part[8]);
    EXPECT_NE(part[0], part[8]);
}

TEST(metis, respects_balance_roughly) {
    // Ring of 60 vertices into 3 parts: parts must stay within tolerance.
    const std::size_t n = 60;
    std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        adj[i].emplace_back((i + 1) % n, 1.0);
        adj[(i + 1) % n].emplace_back(i, 1.0);
    }
    const auto part = baselines::metis_partition(adj, 3);
    std::vector<std::size_t> sizes(3, 0);
    for (const int p : part) ++sizes[static_cast<std::size_t>(p)];
    for (const std::size_t s : sizes) {
        EXPECT_GE(s, 10u);
        EXPECT_LE(s, 30u);
    }
}

TEST(metis, trivial_cases) {
    EXPECT_TRUE(baselines::metis_partition({}, 2).empty());
    std::vector<std::vector<std::pair<std::uint32_t, double>>> two(2);
    two[0].emplace_back(1, 1.0);
    two[1].emplace_back(0, 1.0);
    const auto part = baselines::metis_partition(two, 2);
    EXPECT_NE(part[0], part[1]);
    EXPECT_THROW((void)baselines::metis_partition(two, 0), std::invalid_argument);
}

TEST(metis, clusters_building_samples) {
    const auto& b = easy_building();
    const auto labels = baselines::metis_cluster(b);
    expect_valid_labels(labels, b.samples.size(), b.num_floors);
    std::set<int> used(labels.begin(), labels.end());
    EXPECT_GE(used.size(), 2u);  // not everything in one part
}

// ---------- MDS ----------

TEST(mds_baseline, embedding_shape) {
    const auto& b = easy_building();
    baselines::mds_config cfg;
    cfg.embedding_dim = 8;
    const auto emb = baselines::mds_embed(b, cfg);
    EXPECT_EQ(emb.rows(), b.samples.size());
    EXPECT_EQ(emb.cols(), 8u);
}

TEST(mds_baseline, produces_valid_clustering) {
    const auto& b = easy_building();
    const auto labels = baselines::mds_cluster(b);
    expect_valid_labels(labels, b.samples.size(), b.num_floors);
    std::set<int> used(labels.begin(), labels.end());
    EXPECT_EQ(used.size(), b.num_floors);
}

TEST(mds_baseline, suffers_the_missing_value_pathology) {
    // The paper's diagnosis (Fig. 3): filling the missing entries of the
    // samples × MACs matrix at −120 dBm makes all row vectors nearly
    // parallel, so 1−cosine distances collapse. Verify the effect is real:
    // the mean pairwise distance must be tiny compared to the 0..2 range.
    const auto& b = easy_building();
    const auto rss = fisone::data::to_rss_matrix(b, -120.0);
    fisone::util::rng gen(4);
    double total = 0.0;
    const int draws = 500;
    for (int t = 0; t < draws; ++t) {
        const std::size_t i = gen.uniform_index(rss.rows());
        const std::size_t j = gen.uniform_index(rss.rows());
        total += 1.0 - fisone::linalg::cosine_similarity(rss.row(i), rss.row(j));
    }
    EXPECT_LT(total / draws, 0.1);
}

// ---------- SDCN / DAEGC ----------

TEST(sdcn, smoke_and_quality) {
    const auto& b = easy_building();
    baselines::sdcn_config cfg;
    cfg.pretrain_epochs = 8;
    cfg.train_epochs = 12;
    cfg.seed = 3;
    const auto labels = baselines::sdcn_cluster(b, cfg);
    expect_valid_labels(labels, b.samples.size(), b.num_floors);
    EXPECT_GT(eval::adjusted_rand_index(labels, truths(b)), 0.15);
}

TEST(sdcn, rejects_zero_dims) {
    baselines::sdcn_config cfg;
    cfg.embedding_dim = 0;
    EXPECT_THROW((void)baselines::sdcn_cluster(easy_building(), cfg), std::invalid_argument);
}

TEST(daegc, smoke_and_quality) {
    const auto& b = easy_building();
    baselines::daegc_config cfg;  // default (tuned) schedule
    cfg.seed = 3;
    const auto labels = baselines::daegc_cluster(b, cfg);
    expect_valid_labels(labels, b.samples.size(), b.num_floors);
    EXPECT_GT(eval::adjusted_rand_index(labels, truths(b)), 0.15);
}

TEST(daegc, rejects_zero_dims) {
    baselines::daegc_config cfg;
    cfg.hidden_dim = 0;
    EXPECT_THROW((void)baselines::daegc_cluster(easy_building(), cfg), std::invalid_argument);
}

TEST(baselines, deterministic_per_seed) {
    const auto& b = easy_building();
    baselines::sdcn_config cfg;
    cfg.pretrain_epochs = 3;
    cfg.train_epochs = 4;
    EXPECT_EQ(baselines::sdcn_cluster(b, cfg), baselines::sdcn_cluster(b, cfg));
    EXPECT_EQ(baselines::metis_cluster(b), baselines::metis_cluster(b));
    EXPECT_EQ(baselines::mds_cluster(b), baselines::mds_cluster(b));
}

}  // namespace
