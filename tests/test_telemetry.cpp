// Tests for the live telemetry layer: the bounded log-linear latency
// histogram keeps its documented relative-error contract against the
// exact percentile_accumulator under randomized inputs, merging is
// order-independent down to the bucket level, delta_since recovers
// exactly the observations added between snapshots, the cumulative-le
// ladder is monotone and conservative, the windowed registry rolls
// per-window deltas into a fixed ring that evicts oldest-first — and the
// full render_metrics page passes a Prometheus text-format lint (name
// and label grammar, every sample owned by a declared family, bucket
// ladders monotone with +Inf == _count).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/percentile.hpp"

namespace {

using namespace fisone;
using obs::latency_histogram;

// Observations spanning the magnitudes a serve path actually sees:
// log-uniform between ~1 microsecond and ~10 seconds.
std::vector<double> random_latencies(std::mt19937_64& rng, std::size_t n) {
    std::uniform_real_distribution<double> log_range(std::log(1e-6), std::log(10.0));
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::exp(log_range(rng)));
    return out;
}

// --- histogram accuracy ------------------------------------------------------

TEST(LatencyHistogram, PercentilesMatchExactAccumulatorWithinDocumentedBound) {
    const double bound = latency_histogram::k_max_relative_error;
    const double percentiles[] = {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0};
    for (std::uint64_t seed : {11u, 222u, 3333u}) {
        std::mt19937_64 rng(seed);
        const std::vector<double> samples = random_latencies(rng, 5000);
        latency_histogram hist;
        util::percentile_accumulator exact;
        double sum = 0.0;
        for (double v : samples) {
            hist.add(v);
            exact.add(v);
            sum += v;
        }
        ASSERT_EQ(hist.count(), samples.size());
        EXPECT_NEAR(hist.sum(), sum, 1e-9 * std::abs(sum));
        EXPECT_DOUBLE_EQ(hist.min(), *std::min_element(samples.begin(), samples.end()));
        EXPECT_DOUBLE_EQ(hist.max(), *std::max_element(samples.begin(), samples.end()));
        for (double p : percentiles) {
            const double want = exact.percentile(p);
            const double got = hist.percentile(p);
            EXPECT_LE(std::abs(got - want), bound * want + 1e-12)
                << "seed " << seed << " p" << p << ": exact " << want << ", histogram "
                << got;
        }
    }
}

TEST(LatencyHistogram, ZeroNegativeAndNanLandInTheZeroBucket) {
    latency_histogram h;
    h.add(0.0);
    h.add(-1.5);
    h.add(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), -1.5);  // min/max stay exact even off-scale
    // All three sit in the zero bucket; the reported median is its
    // representative clamped into [min, max], i.e. nonpositive.
    EXPECT_LE(h.percentile(50.0), 0.0);
}

TEST(LatencyHistogram, EmptyPercentileThrowsAndOrZeroDoesNot) {
    latency_histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_THROW(static_cast<void>(h.percentile(50.0)), std::invalid_argument);
    EXPECT_DOUBLE_EQ(h.percentile_or_zero(99.0), 0.0);
    h.add(1.0);
    EXPECT_THROW(static_cast<void>(h.percentile(-1.0)), std::invalid_argument);
    EXPECT_THROW(static_cast<void>(h.percentile(100.5)), std::invalid_argument);
}

// --- merging -----------------------------------------------------------------

TEST(LatencyHistogram, MergeIsOrderIndependentAndEqualsPooledFeed) {
    std::mt19937_64 rng(77);
    constexpr std::size_t k_shards = 6;
    std::vector<latency_histogram> shards(k_shards);
    latency_histogram pooled;
    for (std::size_t s = 0; s < k_shards; ++s) {
        for (double v : random_latencies(rng, 300 + 97 * s)) {
            shards[s].add(v);
            pooled.add(v);
        }
    }
    latency_histogram forward, backward;
    for (std::size_t s = 0; s < k_shards; ++s) forward.merge(shards[s]);
    for (std::size_t s = k_shards; s-- > 0;) backward.merge(shards[s]);

    for (const latency_histogram* m : {&forward, &backward}) {
        EXPECT_EQ(m->count(), pooled.count());
        EXPECT_DOUBLE_EQ(m->min(), pooled.min());
        EXPECT_DOUBLE_EQ(m->max(), pooled.max());
        EXPECT_EQ(m->le_counts(), pooled.le_counts());
        for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0})
            EXPECT_DOUBLE_EQ(m->percentile(p), pooled.percentile(p)) << "p" << p;
    }
    // Sums differ only by float addition order.
    EXPECT_NEAR(forward.sum(), pooled.sum(), 1e-9 * std::abs(pooled.sum()));
}

TEST(LatencyHistogram, DeltaSinceRecoversExactlyTheNewObservations) {
    std::mt19937_64 rng(5);
    latency_histogram h;
    for (double v : random_latencies(rng, 400)) h.add(v);
    const latency_histogram snapshot = h;

    const std::vector<double> added = random_latencies(rng, 250);
    util::percentile_accumulator exact_added;
    double added_sum = 0.0;
    for (double v : added) {
        h.add(v);
        exact_added.add(v);
        added_sum += v;
    }
    const latency_histogram delta = h.delta_since(snapshot);
    ASSERT_EQ(delta.count(), added.size());
    EXPECT_NEAR(delta.sum(), added_sum, 1e-9 * std::abs(added_sum));
    // Delta percentiles hold the same bound against the added set alone.
    for (double p : {50.0, 90.0, 99.0}) {
        const double want = exact_added.percentile(p);
        EXPECT_LE(std::abs(delta.percentile(p) - want),
                  latency_histogram::k_max_relative_error * want + 1e-12)
            << "p" << p;
    }
    // Nothing new since the snapshot: an empty delta.
    EXPECT_TRUE(h.delta_since(h).empty());
}

// --- cumulative-le ladder ----------------------------------------------------

TEST(LatencyHistogram, CumulativeLeIsMonotoneConservativeAndCapped) {
    std::mt19937_64 rng(31);
    const std::vector<double> samples = random_latencies(rng, 2000);
    latency_histogram h;
    for (double v : samples) h.add(v);

    const std::vector<std::uint64_t> le = h.le_counts();
    ASSERT_EQ(le.size(), obs::k_metrics_le_bounds.size());
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < le.size(); ++i) {
        EXPECT_GE(le[i], prev) << "ladder must be monotone at bound " << i;
        EXPECT_LE(le[i], h.count());
        // Conservative: only buckets wholly ≤ the bound are counted, so
        // the ladder never overstates the true cumulative count.
        const double bound = obs::k_metrics_le_bounds[i];
        const auto true_le = static_cast<std::uint64_t>(
            std::count_if(samples.begin(), samples.end(), [&](double v) { return v <= bound; }));
        EXPECT_LE(le[i], true_le) << "bound " << bound;
        prev = le[i];
    }
    EXPECT_EQ(h.cumulative_le(1e9), h.count());
}

// --- windowed registry -------------------------------------------------------

TEST(TelemetryRegistry, WindowsRecordDeltasAndTheRingEvictsOldestFirst) {
    obs::telemetry_registry reg(3);
    double cumulative = 0.0;
    double gauge_value = 0.0;
    latency_histogram lifetime;
    reg.add_counter("requests", [&] { return cumulative; });
    reg.add_gauge("inflight", [&] { return gauge_value; });
    reg.add_histogram("latency", [&] { return lifetime; });
    EXPECT_EQ(reg.capacity(), 3u);
    EXPECT_EQ(reg.ticks(), 0u);
    EXPECT_FALSE(reg.latest().has_value());

    // Five windows: window k adds k observations and k to the counter.
    for (std::uint64_t k = 1; k <= 5; ++k) {
        cumulative += static_cast<double>(k);
        gauge_value = static_cast<double>(10 * k);
        for (std::uint64_t i = 0; i < k; ++i) lifetime.add(0.001 * static_cast<double>(k));
        reg.tick(static_cast<double>(k));
    }
    EXPECT_EQ(reg.ticks(), 5u);

    const std::vector<obs::telemetry_registry::window> recent = reg.recent(10);
    ASSERT_EQ(recent.size(), 3u);  // ring held at capacity, oldest two gone
    for (std::size_t i = 0; i < recent.size(); ++i) {
        const obs::telemetry_registry::window& w = recent[i];
        const auto k = static_cast<double>(i + 3);  // windows 3, 4, 5 survive
        EXPECT_EQ(w.seq, static_cast<std::uint64_t>(k));
        EXPECT_DOUBLE_EQ(w.start_seconds, k - 1.0);
        EXPECT_DOUBLE_EQ(w.duration_seconds, 1.0);
        ASSERT_EQ(w.counters.size(), 1u);
        EXPECT_DOUBLE_EQ(w.counters[0], k);  // the delta, not the cumulative
        ASSERT_EQ(w.gauges.size(), 1u);
        EXPECT_DOUBLE_EQ(w.gauges[0], 10.0 * k);  // instantaneous
        ASSERT_EQ(w.histograms.size(), 1u);
        EXPECT_EQ(w.histograms[0].count(), static_cast<std::uint64_t>(k));  // per-window
    }
    ASSERT_TRUE(reg.latest().has_value());
    EXPECT_EQ(reg.latest()->seq, 5u);
    EXPECT_EQ(reg.recent(2).size(), 2u);
    EXPECT_EQ(reg.recent(2).front().seq, 4u);

    ASSERT_EQ(reg.counter_names(), std::vector<std::string>{"requests"});
    ASSERT_EQ(reg.gauge_names(), std::vector<std::string>{"inflight"});
    ASSERT_EQ(reg.histogram_names(), std::vector<std::string>{"latency"});
}

// --- Prometheus exposition lint ----------------------------------------------

bool valid_metric_name(const std::string& s) {
    if (s.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' || s[0] == ':'))
        return false;
    for (char c : s)
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':'))
            return false;
    return true;
}

bool valid_label_name(const std::string& s) {
    if (s.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
    for (char c : s)
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
    return true;
}

struct parsed_sample {
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

// Parse one exposition sample line; ADD_FAILURE and return nullopt on any
// grammar violation.
std::optional<parsed_sample> parse_sample(const std::string& line) {
    parsed_sample out;
    std::size_t i = line.find_first_of("{ ");
    if (i == std::string::npos) {
        ADD_FAILURE() << "sample line without value: " << line;
        return std::nullopt;
    }
    out.name = line.substr(0, i);
    if (!valid_metric_name(out.name)) {
        ADD_FAILURE() << "bad metric name in: " << line;
        return std::nullopt;
    }
    if (line[i] == '{') {
        const std::size_t close = line.find('}', i);
        if (close == std::string::npos) {
            ADD_FAILURE() << "unterminated label set: " << line;
            return std::nullopt;
        }
        std::size_t pos = i + 1;
        while (pos < close) {
            const std::size_t eq = line.find('=', pos);
            if (eq == std::string::npos || eq > close || line[eq + 1] != '"') {
                ADD_FAILURE() << "bad label pair in: " << line;
                return std::nullopt;
            }
            const std::string key = line.substr(pos, eq - pos);
            if (!valid_label_name(key)) {
                ADD_FAILURE() << "bad label name '" << key << "' in: " << line;
                return std::nullopt;
            }
            const std::size_t vend = line.find('"', eq + 2);
            if (vend == std::string::npos || vend > close) {
                ADD_FAILURE() << "unterminated label value in: " << line;
                return std::nullopt;
            }
            out.labels[key] = line.substr(eq + 2, vend - eq - 2);
            pos = vend + 1;
            if (pos < close && line[pos] == ',') ++pos;
        }
        i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
        ADD_FAILURE() << "no space before value in: " << line;
        return std::nullopt;
    }
    const std::string value_str = line.substr(i + 1);
    std::size_t consumed = 0;
    try {
        out.value = std::stod(value_str, &consumed);
    } catch (const std::exception&) {
        ADD_FAILURE() << "unparseable value in: " << line;
        return std::nullopt;
    }
    if (consumed != value_str.size()) {
        ADD_FAILURE() << "trailing junk after value in: " << line;
        return std::nullopt;
    }
    return out;
}

// A render_metrics page exercising every family: all net counters set,
// real histogram ladders, backend caches, stage summaries + histograms,
// federation health.
std::string full_metrics_page() {
    latency_histogram lat;
    for (int i = 1; i <= 200; ++i) lat.add(0.0001 * i);

    net::tcp_server_stats s;
    s.connections_accepted = 9;
    s.connections_open = 2;
    s.connections_refused = 1;
    s.connections_closed_slow = 1;
    s.frames_received = 40;
    s.responses_sent = 38;
    s.responses_dropped = 1;
    s.pushes_sent = 3;
    s.stats_pushes_sent = 5;
    s.stats_subscribers = 1;
    s.protocol_errors = 2;
    s.requests_admitted = 30;
    s.requests_completed = 28;
    s.requests_in_flight = 2;
    s.requests_shed_overload = 4;
    s.requests_shed_draining = 1;
    s.bytes_received = 123456;
    s.bytes_sent = 654321;
    s.request_latency_p50 = lat.percentile(50.0);
    s.request_latency_p90 = lat.percentile(90.0);
    s.request_latency_p99 = lat.percentile(99.0);
    s.request_latency_count = lat.count();
    s.request_latency_sum = lat.sum();
    s.request_latency_le = lat.le_counts();
    s.telemetry_ticks = 12;
    s.uptime_seconds = 3.5;

    service::service_stats svc;
    svc.jobs_submitted = 20;
    svc.jobs_done = 18;
    svc.buildings_done = 25;
    svc.buildings_ok = 24;
    svc.buildings_failed = 1;
    svc.latency_p50 = lat.percentile(50.0);
    svc.latency_p90 = lat.percentile(90.0);
    svc.latency_p99 = lat.percentile(99.0);
    svc.latency_count = lat.count();
    svc.latency_sum = lat.sum();
    svc.latency_le = lat.le_counts();
    svc.cache_hits = 7;
    svc.cache_misses = 13;

    net::metrics_extras extras;
    api::result_cache_stats cache;
    cache.hits = 4;
    cache.misses = 6;
    cache.entries = 5;
    cache.evictions = 1;
    extras.backend_caches = {cache, cache};
    obs::stage_snapshot stage;
    stage.stage = "api.identify";
    stage.count = lat.count();
    stage.total_seconds = lat.sum();
    stage.p50 = lat.percentile(50.0);
    stage.p90 = lat.percentile(90.0);
    stage.p99 = lat.percentile(99.0);
    stage.le_counts = lat.le_counts();
    extras.stages = {stage};
    federation::health_snapshot health;
    health.retries = 2;
    health.failovers = 1;
    health.backend_up = {true, false};
    extras.federation = health;
    return net::render_metrics(s, svc, extras);
}

TEST(MetricsLint, FullPagePassesPrometheusTextFormatLint) {
    const std::string page = full_metrics_page();
    std::map<std::string, std::string> declared_type;  // family -> type
    std::vector<parsed_sample> samples;
    std::set<std::string> seen_lines;  // duplicate (name + labels) detector

    std::istringstream in(page);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream meta(line.substr(7));
            std::string name, type;
            meta >> name >> type;
            EXPECT_TRUE(valid_metric_name(name)) << line;
            EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary" ||
                        type == "histogram" || type == "untyped")
                << line;
            EXPECT_EQ(declared_type.count(name), 0u) << "family declared twice: " << name;
            declared_type[name] = type;
            continue;
        }
        if (line.rfind("# HELP ", 0) == 0 || line[0] == '#') continue;
        std::optional<parsed_sample> s = parse_sample(line);
        if (!s) continue;
        const std::string identity = line.substr(0, line.rfind(' '));
        EXPECT_TRUE(seen_lines.insert(identity).second) << "duplicate sample: " << identity;
        samples.push_back(std::move(*s));
    }
    ASSERT_GT(samples.size(), 30u);
    ASSERT_GT(declared_type.size(), 10u);

    // Every sample resolves to a declared family — either its own name,
    // or a _bucket/_sum/_count child of a histogram/summary family.
    std::set<std::string> families_with_samples;
    for (const parsed_sample& s : samples) {
        EXPECT_EQ(s.name.rfind("fisone_", 0), 0u) << "unprefixed metric: " << s.name;
        std::string family = s.name;
        auto declared = declared_type.find(family);
        if (declared == declared_type.end()) {
            for (const char* suffix : {"_bucket", "_sum", "_count"}) {
                const std::string suf(suffix);
                if (family.size() > suf.size() &&
                    family.compare(family.size() - suf.size(), suf.size(), suf) == 0) {
                    const std::string base = family.substr(0, family.size() - suf.size());
                    auto it = declared_type.find(base);
                    if (it != declared_type.end() &&
                        (it->second == "histogram" || it->second == "summary")) {
                        if (suf == "_bucket" && it->second != "histogram") continue;
                        family = base;
                        declared = it;
                        break;
                    }
                }
            }
        }
        ASSERT_NE(declared, declared_type.end()) << "sample without # TYPE: " << s.name;
        families_with_samples.insert(family);
        if (s.labels.count("quantile")) {
            EXPECT_EQ(declared->second, "summary") << s.name;
        }
        if (s.labels.count("le")) {
            EXPECT_EQ(declared->second, "histogram") << s.name;
            EXPECT_NE(s.name.find("_bucket"), std::string::npos) << s.name;
        }
    }
    for (const auto& [family, type] : declared_type)
        EXPECT_TRUE(families_with_samples.count(family))
            << "declared family has no samples: " << family << " (" << type << ")";

    // Histogram contract: per family + non-le label-set, the bucket ladder
    // is monotone in le, ends at +Inf, and +Inf equals the _count sample.
    std::map<std::string, std::vector<std::pair<double, double>>> ladders;
    std::map<std::string, double> counts;
    for (const parsed_sample& s : samples) {
        auto other_labels = [&] {
            std::string key;
            for (const auto& [k, v] : s.labels)
                if (k != "le") key += k + "=" + v + ",";
            return key;
        };
        if (auto it = s.labels.find("le"); it != s.labels.end()) {
            const std::string base = s.name.substr(0, s.name.size() - 7);  // strip _bucket
            const double le = it->second == "+Inf" ? std::numeric_limits<double>::infinity()
                                                   : std::stod(it->second);
            ladders[base + "|" + other_labels()].emplace_back(le, s.value);
        } else if (s.name.size() > 6 &&
                   s.name.compare(s.name.size() - 6, 6, "_count") == 0 &&
                   declared_type.count(s.name.substr(0, s.name.size() - 6)) &&
                   declared_type.at(s.name.substr(0, s.name.size() - 6)) == "histogram") {
            counts[s.name.substr(0, s.name.size() - 6) + "|" + other_labels()] = s.value;
        }
    }
    ASSERT_FALSE(ladders.empty());
    for (const auto& [key, ladder] : ladders) {
        double prev_le = -std::numeric_limits<double>::infinity();
        double prev_v = -1.0;
        for (const auto& [le, v] : ladder) {
            EXPECT_GT(le, prev_le) << key << ": le bounds must ascend in exposition order";
            EXPECT_GE(v, prev_v) << key << ": bucket ladder must be monotone";
            prev_le = le;
            prev_v = v;
        }
        ASSERT_TRUE(std::isinf(ladder.back().first)) << key << ": missing +Inf bucket";
        ASSERT_TRUE(counts.count(key)) << key << ": histogram without _count";
        EXPECT_DOUBLE_EQ(ladder.back().second, counts.at(key))
            << key << ": +Inf bucket must equal _count";
    }
    // The new histogram families are actually on the page.
    EXPECT_TRUE(declared_type.count("fisone_net_request_seconds"));
    EXPECT_TRUE(declared_type.count("fisone_service_building_seconds"));
    EXPECT_TRUE(declared_type.count("fisone_stage_duration_seconds"));
}

}  // namespace
