// Tests for src/graph: bipartite construction, CSR integrity, RSS-weighted
// sampling, negative table, random walks.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/bipartite_graph.hpp"
#include "graph/sampling.hpp"

namespace {

using namespace fisone;
using graph::bipartite_graph;

/// Tiny deterministic building: 2 floors, 3 MACs, 4 samples.
data::building tiny_building() {
    data::building b;
    b.name = "tiny";
    b.num_floors = 2;
    b.num_macs = 3;
    // floor 0 samples see macs {0,1}; floor 1 samples see {1,2}
    b.samples.push_back({{{0, -40.0}, {1, -60.0}}, 0, 0});
    b.samples.push_back({{{0, -45.0}, {1, -65.0}}, 0, 1});
    b.samples.push_back({{{1, -70.0}, {2, -50.0}}, 1, 0});
    b.samples.push_back({{{2, -55.0}}, 1, 1});
    b.labeled_sample = 0;
    b.labeled_floor = 0;
    return b;
}

TEST(bipartite_graph, node_counts_and_ids) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    EXPECT_EQ(g.num_macs(), 3u);
    EXPECT_EQ(g.num_samples(), 4u);
    EXPECT_EQ(g.num_nodes(), 7u);
    EXPECT_EQ(g.num_edges(), 7u);  // total observations
    EXPECT_EQ(g.mac_node(2), 2u);
    EXPECT_EQ(g.sample_node(0), 3u);
    EXPECT_TRUE(g.is_sample_node(3));
    EXPECT_FALSE(g.is_sample_node(2));
    EXPECT_EQ(g.sample_index(4), 1u);
    EXPECT_THROW((void)g.sample_index(0), std::invalid_argument);
}

TEST(bipartite_graph, edge_weights_are_rss_plus_offset) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b, 120.0);
    // sample 0 ↔ mac 0 with RSS −40 → weight 80
    bool found = false;
    for (const graph::edge& e : g.neighbors(g.sample_node(0))) {
        if (e.neighbor == g.mac_node(0)) {
            EXPECT_DOUBLE_EQ(e.weight, 80.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // symmetric edge exists with the same weight
    found = false;
    for (const graph::edge& e : g.neighbors(g.mac_node(0))) {
        if (e.neighbor == g.sample_node(0)) {
            EXPECT_DOUBLE_EQ(e.weight, 80.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(bipartite_graph, degrees_and_weighted_degrees) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    EXPECT_EQ(g.degree(g.mac_node(1)), 3u);  // seen by samples 0,1,2
    EXPECT_EQ(g.degree(g.sample_node(3)), 1u);
    EXPECT_DOUBLE_EQ(g.weighted_degree(g.sample_node(3)), 120.0 - 55.0);
}

TEST(bipartite_graph, rejects_nonpositive_weights) {
    auto b = tiny_building();
    EXPECT_THROW((void)bipartite_graph::from_building(b, 30.0), std::invalid_argument);
}

TEST(bipartite_graph, bipartiteness_invariant) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    for (std::uint32_t v = 0; v < g.num_nodes(); ++v)
        for (const graph::edge& e : g.neighbors(v))
            EXPECT_NE(g.is_sample_node(v), g.is_sample_node(e.neighbor))
                << "edge within one side of the bipartition";
}

TEST(neighbor_sampler, weighted_prefers_strong_edges) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(3);
    // sample 0's neighbours: mac0 (w=80), mac1 (w=60) → mac0 ~ 57%
    std::map<std::uint32_t, int> counts;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) ++counts[sampler.sample(g.sample_node(0), gen)];
    EXPECT_NEAR(counts[g.mac_node(0)] / static_cast<double>(draws), 80.0 / 140.0, 0.02);
    EXPECT_NEAR(counts[g.mac_node(1)] / static_cast<double>(draws), 60.0 / 140.0, 0.02);
}

TEST(neighbor_sampler, uniform_ignores_weights) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, false);
    util::rng gen(3);
    std::map<std::uint32_t, int> counts;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) ++counts[sampler.sample(g.sample_node(0), gen)];
    EXPECT_NEAR(counts[g.mac_node(0)] / static_cast<double>(draws), 0.5, 0.02);
}

TEST(neighbor_sampler, sample_edge_returns_incident_edge) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(5);
    for (int i = 0; i < 100; ++i) {
        const graph::edge& e = sampler.sample_edge(g.sample_node(2), gen);
        EXPECT_TRUE(e.neighbor == g.mac_node(1) || e.neighbor == g.mac_node(2));
        EXPECT_GT(e.weight, 0.0);
    }
}

TEST(neighbor_sampler, sample_many_size) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(5);
    EXPECT_EQ(sampler.sample_many(g.mac_node(1), 7, gen).size(), 7u);
}

TEST(negative_table, respects_degree_exponent) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::negative_table table(g, 0.75);
    util::rng gen(11);
    std::map<std::uint32_t, int> counts;
    const int draws = 60000;
    for (int i = 0; i < draws; ++i) ++counts[table.sample(gen)];
    // mac1 has degree 3, sample 3 degree 1: ratio 3^0.75 ≈ 2.28
    const double ratio = counts[g.mac_node(1)] / static_cast<double>(counts[g.sample_node(3)]);
    EXPECT_NEAR(ratio, std::pow(3.0, 0.75), 0.35);
}

TEST(walks, pairs_respect_window_and_exclude_self) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(7);
    graph::walk_config cfg;
    cfg.walk_length = 5;
    cfg.walks_per_node = 3;
    cfg.window = 2;
    const auto pairs = graph::generate_walk_pairs(g, sampler, cfg, gen);
    EXPECT_FALSE(pairs.empty());
    for (const auto& p : pairs) {
        EXPECT_NE(p.first, p.second);
        EXPECT_LT(p.first, g.num_nodes());
        EXPECT_LT(p.second, g.num_nodes());
    }
}

TEST(walks, isolated_nodes_are_skipped) {
    auto b = tiny_building();
    b.num_macs = 4;  // mac 3 never observed → isolated node
    const auto g = bipartite_graph::from_building(b);
    EXPECT_EQ(g.degree(g.mac_node(3)), 0u);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(7);
    const auto pairs = graph::generate_walk_pairs(g, sampler, {}, gen);
    for (const auto& p : pairs) {
        EXPECT_NE(p.first, g.mac_node(3));
        EXPECT_NE(p.second, g.mac_node(3));
    }
}

TEST(walks, rejects_degenerate_config) {
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(7);
    graph::walk_config bad;
    bad.walk_length = 1;
    EXPECT_THROW((void)graph::generate_walk_pairs(g, sampler, bad, gen), std::invalid_argument);
    bad.walk_length = 5;
    bad.window = 0;
    EXPECT_THROW((void)graph::generate_walk_pairs(g, sampler, bad, gen), std::invalid_argument);
}

TEST(walks, pairs_connect_local_neighbourhoods) {
    // In the tiny building, sample 3 only sees mac 2; window-1 pairs from
    // its walks must start (3's node, mac2's node).
    const auto b = tiny_building();
    const auto g = bipartite_graph::from_building(b);
    graph::neighbor_sampler sampler(g, true);
    util::rng gen(13);
    graph::walk_config cfg;
    cfg.window = 1;
    cfg.walks_per_node = 2;
    const auto pairs = graph::generate_walk_pairs(g, sampler, cfg, gen);
    bool found = false;
    for (const auto& p : pairs)
        if (p.first == g.sample_node(3)) {
            EXPECT_EQ(p.second, g.mac_node(2));
            found = true;
        }
    EXPECT_TRUE(found);
}

}  // namespace
