// Tests for src/autodiff: every tape operation is verified against central
// differences, plus optimizer convergence checks.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/gradcheck.hpp"
#include "autodiff/optimizer.hpp"
#include "autodiff/tape.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone::autodiff;
using fisone::linalg::matrix;
using fisone::util::rng;

matrix random_matrix(std::size_t r, std::size_t c, rng& gen, double scale = 1.0) {
    matrix m(r, c);
    for (double& x : m.flat()) x = gen.normal(0.0, scale);
    return m;
}

/// Run a gradient check for a scalar function of one matrix input built on
/// a fresh tape per evaluation.
void expect_gradient_ok(const std::function<var(tape&, var)>& build, const matrix& input,
                        double tolerance = 1e-4) {
    tape t;
    const var x = t.parameter(input);
    const var loss = build(t, x);
    t.backward(loss);
    const matrix analytic = t.grad(x);

    const auto scalar_fn = [&build](const matrix& m) {
        tape t2;
        const var x2 = t2.parameter(m);
        const var loss2 = build(t2, x2);
        return t2.value(loss2)(0, 0);
    };
    const gradcheck_result r = check_gradient(scalar_fn, input, analytic, 1e-5, tolerance);
    EXPECT_TRUE(r.passed) << "max_abs=" << r.max_abs_error << " max_rel=" << r.max_rel_error;
}

// ---------- forward values ----------

TEST(tape, forward_add_sub_scale) {
    tape t;
    const var a = t.constant(matrix{{1, 2}, {3, 4}});
    const var b = t.constant(matrix{{10, 20}, {30, 40}});
    EXPECT_DOUBLE_EQ(t.value(t.add(a, b))(1, 1), 44.0);
    EXPECT_DOUBLE_EQ(t.value(t.sub(b, a))(0, 0), 9.0);
    EXPECT_DOUBLE_EQ(t.value(t.scale(a, -2.0))(0, 1), -4.0);
    EXPECT_DOUBLE_EQ(t.value(t.add_scalar(a, 0.5))(0, 0), 1.5);
}

TEST(tape, forward_matmul_concat) {
    tape t;
    const var a = t.constant(matrix{{1, 2}});
    const var b = t.constant(matrix{{3}, {4}});
    EXPECT_DOUBLE_EQ(t.value(t.matmul(a, b))(0, 0), 11.0);
    const var c = t.concat_cols(a, a);
    EXPECT_EQ(t.value(c).cols(), 4u);
    EXPECT_DOUBLE_EQ(t.value(c)(0, 3), 2.0);
}

TEST(tape, forward_activations) {
    tape t;
    const var x = t.constant(matrix{{0.0, 100.0, -100.0}});
    const auto sig = t.value(t.sigmoid(x));
    EXPECT_DOUBLE_EQ(sig(0, 0), 0.5);
    EXPECT_NEAR(sig(0, 1), 1.0, 1e-12);
    EXPECT_NEAR(sig(0, 2), 0.0, 1e-12);
    const auto rel = t.value(t.relu(x));
    EXPECT_DOUBLE_EQ(rel(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(rel(0, 1), 100.0);
    // log-sigmoid is finite even for extreme inputs
    const auto ls = t.value(t.log_sigmoid(x));
    EXPECT_NEAR(ls(0, 0), std::log(0.5), 1e-12);
    EXPECT_NEAR(ls(0, 1), 0.0, 1e-12);
    EXPECT_NEAR(ls(0, 2), -100.0, 1e-6);
}

TEST(tape, forward_l2_normalize) {
    tape t;
    const var x = t.constant(matrix{{3.0, 4.0}});
    const auto y = t.value(t.l2_normalize_rows(x));
    EXPECT_DOUBLE_EQ(y(0, 0), 0.6);
    EXPECT_DOUBLE_EQ(y(0, 1), 0.8);
}

TEST(tape, forward_gather_weighted_sum) {
    tape t;
    const var x = t.constant(matrix{{1, 1}, {2, 2}, {3, 3}});
    const auto g = t.value(t.gather_rows(x, {2, 0, 2}));
    EXPECT_EQ(g.rows(), 3u);
    EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(g(2, 1), 3.0);

    std::vector<std::vector<std::pair<std::size_t, double>>> groups{
        {{0, 0.5}, {1, 0.5}}, {{2, 2.0}}};
    const auto w = t.value(t.weighted_sum_rows(x, groups));
    EXPECT_DOUBLE_EQ(w(0, 0), 1.5);
    EXPECT_DOUBLE_EQ(w(1, 1), 6.0);
}

TEST(tape, forward_softmax_and_normalize) {
    tape t;
    const var x = t.constant(matrix{{1.0, 1.0, 1.0}});
    const auto sm = t.value(t.softmax_rows(x));
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(sm(0, j), 1.0 / 3.0, 1e-12);

    const var pos = t.constant(matrix{{1.0, 3.0}});
    const auto rn = t.value(t.row_normalize(pos));
    EXPECT_DOUBLE_EQ(rn(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(rn(0, 1), 0.75);
}

TEST(tape, forward_pairwise_sqdist) {
    tape t;
    const var a = t.constant(matrix{{0, 0}, {1, 1}});
    const var b = t.constant(matrix{{0, 1}});
    const auto d = t.value(t.pairwise_sqdist(a, b));
    EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(d(1, 0), 1.0);
}

TEST(tape, forward_reductions) {
    tape t;
    const var x = t.constant(matrix{{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(t.value(t.sum_all(x))(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(t.value(t.mean_all(x))(0, 0), 2.5);
}

TEST(tape, backward_requires_scalar_root) {
    tape t;
    const var x = t.parameter(matrix{{1, 2}});
    EXPECT_THROW(t.backward(x), std::invalid_argument);
}

TEST(tape, errors_on_shape_mismatch) {
    tape t;
    const var a = t.constant(matrix(2, 2));
    const var b = t.constant(matrix(2, 3));
    EXPECT_THROW((void)t.add(a, b), std::invalid_argument);
    EXPECT_THROW((void)t.hadamard(a, b), std::invalid_argument);
    EXPECT_THROW((void)t.row_dot(a, b), std::invalid_argument);
    EXPECT_THROW((void)t.gather_rows(a, {5}), std::out_of_range);
}

// ---------- gradient checks, one per op ----------

TEST(gradcheck, add_and_scale) {
    rng gen(1);
    expect_gradient_ok(
        [](tape& t, var x) { return t.mean_all(t.scale(t.add(x, x), 1.7)); },
        random_matrix(3, 4, gen));
}

TEST(gradcheck, sub) {
    rng gen(2);
    const matrix other = random_matrix(3, 3, gen);
    expect_gradient_ok(
        [&other](tape& t, var x) { return t.mean_all(t.sub(x, t.constant(other))); },
        random_matrix(3, 3, gen));
}

TEST(gradcheck, hadamard_self) {
    rng gen(3);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.hadamard(x, x)); },
                       random_matrix(2, 5, gen));
}

TEST(gradcheck, matmul_left_and_right) {
    rng gen(4);
    const matrix rhs = random_matrix(4, 3, gen);
    expect_gradient_ok(
        [&rhs](tape& t, var x) { return t.mean_all(t.matmul(x, t.constant(rhs))); },
        random_matrix(2, 4, gen));
    const matrix lhs = random_matrix(3, 2, gen);
    expect_gradient_ok(
        [&lhs](tape& t, var x) { return t.mean_all(t.matmul(t.constant(lhs), x)); },
        random_matrix(2, 5, gen));
}

TEST(gradcheck, matmul_both_sides_via_square) {
    rng gen(5);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.matmul(x, x)); },
                       random_matrix(3, 3, gen));
}

TEST(gradcheck, add_broadcast_row) {
    rng gen(6);
    const matrix a = random_matrix(4, 3, gen);
    expect_gradient_ok(
        [&a](tape& t, var bias) { return t.mean_all(t.add_broadcast_row(t.constant(a), bias)); },
        random_matrix(1, 3, gen));
    const matrix bias = random_matrix(1, 3, gen);
    expect_gradient_ok(
        [&bias](tape& t, var x) {
            return t.mean_all(t.add_broadcast_row(x, t.constant(bias)));
        },
        random_matrix(4, 3, gen));
}

TEST(gradcheck, concat_cols) {
    rng gen(7);
    const matrix other = random_matrix(3, 2, gen);
    expect_gradient_ok(
        [&other](tape& t, var x) {
            const var c = t.concat_cols(x, t.constant(other));
            return t.mean_all(t.hadamard(c, c));
        },
        random_matrix(3, 4, gen));
}

TEST(gradcheck, sigmoid) {
    rng gen(8);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.sigmoid(x)); },
                       random_matrix(3, 3, gen));
}

TEST(gradcheck, tanh_act) {
    rng gen(9);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.tanh_act(x)); },
                       random_matrix(3, 3, gen));
}

TEST(gradcheck, relu) {
    rng gen(10);
    // Shift away from 0 to avoid the kink in finite differences.
    matrix m = random_matrix(3, 3, gen);
    for (double& x : m.flat()) x += (x >= 0.0 ? 0.5 : -0.5);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.relu(x)); }, m);
}

TEST(gradcheck, log_and_reciprocal) {
    rng gen(11);
    matrix m = random_matrix(3, 3, gen);
    for (double& x : m.flat()) x = std::abs(x) + 0.5;
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.log_op(x)); }, m);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.reciprocal(x)); }, m);
}

TEST(gradcheck, log_sigmoid) {
    rng gen(12);
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.log_sigmoid(x)); },
                       random_matrix(3, 4, gen, 2.0));
}

TEST(gradcheck, l2_normalize_rows) {
    rng gen(13);
    const matrix probe = random_matrix(3, 4, gen);
    expect_gradient_ok(
        [&probe](tape& t, var x) {
            return t.mean_all(t.hadamard(t.l2_normalize_rows(x), t.constant(probe)));
        },
        random_matrix(3, 4, gen));
}

TEST(gradcheck, gather_rows_with_repeats) {
    rng gen(14);
    expect_gradient_ok(
        [](tape& t, var x) {
            const var g = t.gather_rows(x, {0, 2, 0, 1});
            return t.mean_all(t.hadamard(g, g));
        },
        random_matrix(3, 3, gen));
}

TEST(gradcheck, weighted_sum_rows) {
    rng gen(15);
    std::vector<std::vector<std::pair<std::size_t, double>>> groups{
        {{0, 0.3}, {1, 0.7}}, {{2, 1.0}, {0, -0.5}}, {{1, 2.0}}};
    expect_gradient_ok(
        [&groups](tape& t, var x) {
            const var w = t.weighted_sum_rows(x, groups);
            return t.mean_all(t.hadamard(w, w));
        },
        random_matrix(3, 4, gen));
}

TEST(gradcheck, row_dot_both_sides) {
    rng gen(16);
    const matrix other = random_matrix(4, 3, gen);
    expect_gradient_ok(
        [&other](tape& t, var x) { return t.mean_all(t.row_dot(x, t.constant(other))); },
        random_matrix(4, 3, gen));
    expect_gradient_ok([](tape& t, var x) { return t.mean_all(t.row_dot(x, x)); },
                       random_matrix(4, 3, gen));
}

TEST(gradcheck, pairwise_sqdist_both_sides) {
    rng gen(17);
    const matrix centroids = random_matrix(2, 3, gen);
    expect_gradient_ok(
        [&centroids](tape& t, var x) {
            return t.mean_all(t.pairwise_sqdist(x, t.constant(centroids)));
        },
        random_matrix(4, 3, gen));
    const matrix points = random_matrix(4, 3, gen);
    expect_gradient_ok(
        [&points](tape& t, var mu) {
            return t.mean_all(t.pairwise_sqdist(t.constant(points), mu));
        },
        random_matrix(2, 3, gen));
}

TEST(gradcheck, row_normalize) {
    rng gen(18);
    matrix m = random_matrix(3, 4, gen);
    for (double& x : m.flat()) x = std::abs(x) + 0.2;
    const matrix probe = random_matrix(3, 4, gen);
    expect_gradient_ok(
        [&probe](tape& t, var x) {
            return t.mean_all(t.hadamard(t.row_normalize(x), t.constant(probe)));
        },
        m);
}

TEST(gradcheck, softmax_rows) {
    rng gen(19);
    const matrix probe = random_matrix(3, 5, gen);
    expect_gradient_ok(
        [&probe](tape& t, var x) {
            return t.mean_all(t.hadamard(t.softmax_rows(x), t.constant(probe)));
        },
        random_matrix(3, 5, gen));
}

TEST(gradcheck, composite_gnn_like_stack) {
    // A miniature RF-GNN hop: gather → weighted aggregate → concat → matmul
    // → tanh → l2-normalize → skip-gram style loss. If this passes, the
    // training graph is differentiated correctly end to end.
    rng gen(20);
    const matrix w = random_matrix(4, 2, gen);
    std::vector<std::vector<std::pair<std::size_t, double>>> groups{
        {{1, 0.6}, {2, 0.4}}, {{0, 1.0}}, {{2, 0.5}, {0, 0.5}}};
    expect_gradient_ok(
        [&](tape& t, var x) {
            const var agg = t.weighted_sum_rows(x, groups);
            const var self = t.gather_rows(x, {0, 1, 2});
            const var cat = t.concat_cols(self, agg);
            const var h = t.l2_normalize_rows(t.tanh_act(t.matmul(cat, t.constant(w))));
            const var left = t.gather_rows(h, {0, 1});
            const var right = t.gather_rows(h, {2, 0});
            return t.negate(t.mean_all(t.log_sigmoid(t.row_dot(left, right))));
        },
        random_matrix(3, 2, gen));
}

// ---------- optimizers ----------

TEST(optimizer, sgd_minimizes_quadratic) {
    // f(x) = ||x - target||²
    const matrix target{{1.0, -2.0, 3.0}};
    matrix x(1, 3, 0.0);
    sgd opt(0.1);
    for (int i = 0; i < 200; ++i) {
        matrix grad(1, 3);
        for (std::size_t j = 0; j < 3; ++j) grad(0, j) = 2.0 * (x(0, j) - target(0, j));
        opt.step(x, grad);
    }
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(x(0, j), target(0, j), 1e-6);
}

TEST(optimizer, sgd_momentum_still_converges) {
    const matrix target{{-1.0, 0.5}};
    matrix x(1, 2, 0.0);
    sgd opt(0.05, 0.9);
    for (int i = 0; i < 400; ++i) {
        matrix grad(1, 2);
        for (std::size_t j = 0; j < 2; ++j) grad(0, j) = 2.0 * (x(0, j) - target(0, j));
        opt.step(x, grad);
    }
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(x(0, j), target(0, j), 1e-4);
}

TEST(optimizer, adam_minimizes_quadratic) {
    const matrix target{{2.0, -1.0}};
    matrix x(1, 2, 0.0);
    adam opt(adam::config{0.05});
    for (int i = 0; i < 500; ++i) {
        matrix grad(1, 2);
        for (std::size_t j = 0; j < 2; ++j) grad(0, j) = 2.0 * (x(0, j) - target(0, j));
        opt.step(x, grad);
        opt.end_step();
    }
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(x(0, j), target(0, j), 1e-3);
}

TEST(optimizer, gradient_clipping) {
    matrix g{{3.0, 4.0}};
    clip_gradient(g, 1.0);
    EXPECT_NEAR(std::sqrt(g(0, 0) * g(0, 0) + g(0, 1) * g(0, 1)), 1.0, 1e-12);
    matrix g2{{0.3, 0.4}};
    clip_gradient(g2, 1.0);  // below the cap: untouched
    EXPECT_DOUBLE_EQ(g2(0, 0), 0.3);
}

TEST(optimizer, rejects_bad_config) {
    EXPECT_THROW(sgd(-0.1), std::invalid_argument);
    EXPECT_THROW(sgd(0.1, 1.5), std::invalid_argument);
    EXPECT_THROW(adam(adam::config{0.0}), std::invalid_argument);
}

TEST(optimizer, shape_mismatch_throws) {
    matrix x(1, 2, 0.0);
    matrix bad_grad(2, 2, 0.0);
    sgd s(0.1);
    EXPECT_THROW(s.step(x, bad_grad), std::invalid_argument);
    adam a;
    EXPECT_THROW(a.step(x, bad_grad), std::invalid_argument);
}

// ---------- end-to-end tape training sanity ----------

TEST(training, tape_learns_linear_map) {
    // Fit y = XW with W learned from data; verifies the full loop
    // (forward, backward, adam) reduces loss by orders of magnitude.
    rng gen(42);
    const matrix x_data = random_matrix(32, 4, gen);
    const matrix w_true = random_matrix(4, 2, gen);
    const matrix y_data = fisone::linalg::matmul(x_data, w_true);

    matrix w = random_matrix(4, 2, gen, 0.1);
    adam opt(adam::config{0.05});
    double first_loss = 0.0, last_loss = 0.0;
    for (int epoch = 0; epoch < 300; ++epoch) {
        tape t;
        const var wv = t.parameter(w);
        const var pred = t.matmul(t.constant(x_data), wv);
        const var diff = t.sub(pred, t.constant(y_data));
        const var loss = t.mean_all(t.hadamard(diff, diff));
        t.backward(loss);
        opt.step(w, t.grad(wv));
        opt.end_step();
        if (epoch == 0) first_loss = t.value(loss)(0, 0);
        last_loss = t.value(loss)(0, 0);
    }
    EXPECT_LT(last_loss, first_loss * 1e-4);
}

}  // namespace
