// Tests for the federation subsystem: store_registry manifest merging and
// duplicate detection, router policies (round-robin, least-queue-depth,
// content-hash affinity) against synthetic probes and against live fleets,
// merged get_stats, cancel/flush fan-out — and the acceptance bar: the
// federated input-order NDJSON re-export is byte-identical to a single
// floor_service run over the concatenated corpus at every tested
// (stores × backends × threads) combination.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/fault_plan.hpp"

#include "api/client.hpp"
#include "api/codec.hpp"
#include "data/corpus_store.hpp"
#include "federation/federated_server.hpp"
#include "federation/router.hpp"
#include "federation/store_registry.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"

// Fork-based death tests (the crash-mid-append drill) are unreliable under
// ThreadSanitizer: the forked child of a threaded TSan process can deadlock
// in the runtime before it ever reaches the abort. The CI ingestion chaos
// smoke covers the same drill end to end over a real socket.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FISONE_TSAN 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define FISONE_TSAN 1
#endif

namespace {

using namespace fisone;

// --- helpers ----------------------------------------------------------------

data::building tiny_building(std::size_t i) {
    sim::building_spec spec;
    spec.name = "fed-";
    spec.name += std::to_string(i);
    spec.num_floors = 3 + i % 2;
    spec.samples_per_floor = 20;
    spec.aps_per_floor = 6;
    spec.seed = 900 + i;
    return sim::generate_building(spec).building;
}

data::corpus tiny_corpus(std::size_t count) {
    data::corpus c;
    c.name = "fed-city";
    for (std::size_t i = 0; i < count; ++i) c.buildings.push_back(tiny_building(i));
    return c;
}

core::fis_one_config fast_pipeline() {
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 8;
    cfg.gnn.epochs = 2;
    cfg.gnn.walks.walks_per_node = 2;
    return cfg;
}

service::service_config fast_service_config(std::size_t num_threads) {
    service::service_config cfg;
    cfg.pipeline = fast_pipeline();
    cfg.seed = 4242;
    cfg.num_threads = num_threads;
    return cfg;
}

/// Fresh scratch directory under the system temp dir.
std::string scratch_dir(const std::string& tag) {
    const auto dir = std::filesystem::temp_directory_path() / ("fisone_fed_" + tag);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/// Split \p c into \p parts contiguous sub-corpora, write each as a store
/// under `<root>/store-<k>`, and return the store directories. Mounting the
/// stores in order reproduces the corpus' global building order.
std::vector<std::string> split_into_stores(const data::corpus& c, std::size_t parts,
                                           const std::string& root,
                                           std::size_t shard_size) {
    std::vector<std::string> dirs;
    const std::size_t n = c.buildings.size();
    const std::size_t base = n / parts;
    std::size_t first = 0;
    for (std::size_t k = 0; k < parts; ++k) {
        const std::size_t count = base + (k < n % parts ? 1 : 0);
        data::corpus part;
        part.name = c.name + "-part-" + std::to_string(k);
        part.buildings.assign(c.buildings.begin() + static_cast<std::ptrdiff_t>(first),
                              c.buildings.begin() + static_cast<std::ptrdiff_t>(first + count));
        const std::string dir = (std::filesystem::path(root) / ("store-" + std::to_string(k)))
                                    .string();
        static_cast<void>(data::write_corpus_store(part, dir, shard_size));
        dirs.push_back(dir);
        first += count;
    }
    return dirs;
}

/// Input-order NDJSON of a single floor_service run over one store holding
/// the whole corpus — the baseline every federated combination must match
/// byte for byte.
std::string single_service_ndjson(const data::corpus_store& store) {
    service::floor_service svc(fast_service_config(1));
    std::vector<service::floor_service::job> jobs;
    for (std::size_t s = 0; s < store.num_shards(); ++s)
        jobs.push_back(svc.submit(service::make_shard_ref(store, s)));
    svc.wait_all();
    std::vector<runtime::building_report> reports;
    for (const auto& job : jobs)
        for (const auto& report : job.reports()) reports.push_back(report);
    std::ostringstream out;
    service::export_input_order(out, std::move(reports));
    return out.str();
}

/// Thread-safe sink that decodes every loopback frame into a typed response.
struct response_collector {
    std::mutex m;
    std::vector<api::response> responses;

    federation::federated_server::frame_sink sink() {
        return [this](std::string_view frame) {
            const api::decode_result<api::response> r = api::decode_response(frame);
            ASSERT_TRUE(r.ok()) << "undecodable response frame";
            const std::lock_guard<std::mutex> lock(m);
            responses.push_back(*r.value);
        };
    }

    template <class T>
    std::vector<T> of() {
        const std::lock_guard<std::mutex> lock(m);
        std::vector<T> out;
        for (const api::response& r : responses)
            if (const T* v = std::get_if<T>(&r)) out.push_back(*v);
        return out;
    }
};

// --- store_registry ---------------------------------------------------------

TEST(store_registry, mounts_stores_as_one_contiguous_namespace) {
    const std::string root = scratch_dir("registry");
    const data::corpus city = tiny_corpus(5);
    const std::vector<std::string> dirs = split_into_stores(city, 2, root, 2);

    federation::store_registry reg;
    EXPECT_EQ(reg.total_buildings(), 0u);
    EXPECT_EQ(reg.mount(dirs[0]), 0u);
    EXPECT_EQ(reg.mount(dirs[1]), 1u);
    EXPECT_EQ(reg.num_stores(), 2u);
    EXPECT_EQ(reg.total_buildings(), 5u);
    EXPECT_EQ(reg.store_offset(0), 0u);
    EXPECT_EQ(reg.store_offset(1), 3u);  // 5 buildings: 3 + 2

    // Global shard order tiles [0, 5) contiguously across stores.
    std::size_t expected_first = 0;
    for (const federation::mounted_shard& ms : reg.shards()) {
        EXPECT_EQ(ms.ref.first_index, expected_first);
        expected_first += ms.ref.num_buildings;
    }
    EXPECT_EQ(expected_first, 5u);

    const data::corpus_manifest merged = reg.merged_manifest();
    EXPECT_NO_THROW(merged.validate());
    EXPECT_EQ(merged.corpus_name, "fed-city-part-0+fed-city-part-1");
    EXPECT_EQ(merged.total_buildings(), 5u);

    EXPECT_THROW((void)reg.store(2), std::out_of_range);
    EXPECT_THROW((void)reg.store_offset(2), std::out_of_range);
}

TEST(store_registry, rejects_duplicate_building_id_merges) {
    const std::string root = scratch_dir("registry_dup");
    const data::corpus city = tiny_corpus(4);
    const std::vector<std::string> dirs = split_into_stores(city, 2, root, 2);

    // Mounting the same store twice: its shard files (and thus every
    // building id) would appear under two global index ranges.
    federation::store_registry same_store;
    static_cast<void>(same_store.mount(dirs[0]));
    EXPECT_THROW(static_cast<void>(same_store.mount(dirs[0])), std::invalid_argument);

    // Two different stores declaring the same corpus name collide every
    // `<corpus>/<local index>` building id in the merged namespace.
    data::corpus clone;
    clone.name = "fed-city-part-0";  // same name as dirs[0]'s corpus
    clone.buildings.push_back(tiny_building(7));
    const std::string clone_dir = (std::filesystem::path(root) / "clone").string();
    static_cast<void>(data::write_corpus_store(clone, clone_dir, 1));
    federation::store_registry same_name;
    static_cast<void>(same_name.mount(dirs[0]));
    EXPECT_THROW(static_cast<void>(same_name.mount(clone_dir)), std::invalid_argument);
    // The registry stays usable after a rejected mount.
    EXPECT_EQ(same_name.num_stores(), 1u);
    EXPECT_NO_THROW(static_cast<void>(same_name.mount(dirs[1])));
}

TEST(store_registry, confines_shard_paths_to_mounted_stores) {
    const std::string root = scratch_dir("registry_confine");
    const data::corpus city = tiny_corpus(4);
    const std::vector<std::string> dirs = split_into_stores(city, 2, root, 2);

    federation::store_registry reg;
    EXPECT_FALSE(reg.shard_allowed(dirs[0] + "/shard-0000.csv"));  // nothing mounted
    static_cast<void>(reg.mount(dirs[0]));
    EXPECT_TRUE(reg.shard_allowed(dirs[0] + "/shard-0000.csv"));
    EXPECT_FALSE(reg.shard_allowed(dirs[1] + "/shard-0000.csv"));  // not mounted
    EXPECT_FALSE(reg.shard_allowed("/etc/passwd"));
    // Dot-segments must not escape the store root.
    EXPECT_FALSE(reg.shard_allowed(dirs[0] + "/../store-1/shard-0000.csv"));
    static_cast<void>(reg.mount(dirs[1]));
    EXPECT_TRUE(reg.shard_allowed(dirs[1] + "/shard-0000.csv"));
}

// --- router -----------------------------------------------------------------

TEST(router, round_robin_cycles_and_skips_paused) {
    federation::router rt(federation::routing_policy::round_robin, 3);
    std::vector<federation::backend_probe> probes(3);
    EXPECT_EQ(rt.route(0, probes), 0u);
    EXPECT_EQ(rt.route(0, probes), 1u);
    EXPECT_EQ(rt.route(0, probes), 2u);
    EXPECT_EQ(rt.route(0, probes), 0u);
    probes[1].paused = true;
    EXPECT_EQ(rt.route(0, probes), 2u);  // cursor at 1 → skips to 2
    EXPECT_EQ(rt.route(0, probes), 0u);
}

TEST(router, least_queue_depth_prefers_idle_unpaused_backends) {
    federation::router rt(federation::routing_policy::least_queue_depth, 3);
    std::vector<federation::backend_probe> probes(3);
    probes[0].queue_depth = 4;
    probes[1].queue_depth = 1;
    probes[2].queue_depth = 2;
    EXPECT_EQ(rt.route(0, probes), 1u);
    probes[1].paused = true;  // paused backends never receive new work
    EXPECT_EQ(rt.route(0, probes), 2u);
    probes[2].queue_depth = 4;  // tie between 0 and 2 → lowest index
    EXPECT_EQ(rt.route(0, probes), 0u);
}

TEST(router, content_hash_affinity_is_stable_and_probes_past_paused) {
    federation::router rt(federation::routing_policy::content_hash_affinity, 4);
    std::vector<federation::backend_probe> probes(4);
    const std::size_t home = rt.route(10, probes);
    EXPECT_EQ(home, 2u);  // 10 % 4
    for (int i = 0; i < 3; ++i) EXPECT_EQ(rt.route(10, probes), home);  // stable
    probes[2].paused = true;
    EXPECT_EQ(rt.route(10, probes), 3u);  // forward from the paused home slot
    probes[3].paused = true;
    EXPECT_EQ(rt.route(10, probes), 0u);  // wraps
}

TEST(router, whole_fleet_paused_parks_at_natural_choice) {
    federation::router rt(federation::routing_policy::least_queue_depth, 2);
    std::vector<federation::backend_probe> probes(2);
    probes[0].paused = probes[1].paused = true;
    probes[1].queue_depth = 9;
    EXPECT_EQ(rt.route(0, probes), 0u);
}

TEST(router, rejects_degenerate_inputs) {
    EXPECT_THROW(federation::router(federation::routing_policy::round_robin, 0),
                 std::invalid_argument);
    federation::router rt(federation::routing_policy::round_robin, 2);
    const std::vector<federation::backend_probe> three(3);
    EXPECT_THROW(static_cast<void>(rt.route(0, three)), std::invalid_argument);
}

// --- merged stats -----------------------------------------------------------

TEST(merge_backend_stats, sums_counters_and_pools_latencies) {
    service::service_stats a;
    a.jobs_submitted = 3;
    a.jobs_done = 3;
    a.buildings_done = 5;
    a.buildings_ok = 5;
    a.cache_hits = 2;
    a.cache_misses = 3;
    a.cache_evictions = 1;
    service::service_stats b;
    b.jobs_submitted = 1;
    b.jobs_done = 1;
    b.buildings_done = 2;
    b.buildings_ok = 1;
    b.buildings_failed = 1;
    b.cache_misses = 2;
    b.cache_evictions = 4;

    obs::latency_histogram la, lb, pooled;
    for (const double x : {0.1, 0.2, 0.3, 0.4, 0.5}) {
        la.add(x);
        pooled.add(x);
    }
    for (const double x : {1.0, 2.0}) {
        lb.add(x);
        pooled.add(x);
    }

    const service::service_stats merged = federation::merge_backend_stats({a, b}, {la, lb});
    EXPECT_EQ(merged.jobs_submitted, 4u);
    EXPECT_EQ(merged.jobs_done, 4u);
    EXPECT_EQ(merged.buildings_done, 7u);
    EXPECT_EQ(merged.buildings_ok, 6u);
    EXPECT_EQ(merged.buildings_failed, 1u);
    EXPECT_EQ(merged.cache_hits, 2u);
    EXPECT_EQ(merged.cache_misses, 5u);
    EXPECT_EQ(merged.cache_evictions, 5u);
    EXPECT_DOUBLE_EQ(merged.latency_p50, pooled.percentile(50.0));
    EXPECT_DOUBLE_EQ(merged.latency_p90, pooled.percentile(90.0));
    EXPECT_DOUBLE_EQ(merged.latency_p99, pooled.percentile(99.0));

    EXPECT_THROW(static_cast<void>(federation::merge_backend_stats({a, b}, {la})),
                 std::invalid_argument);
    const service::service_stats empty = federation::merge_backend_stats({}, {});
    EXPECT_EQ(empty.jobs_submitted, 0u);
    EXPECT_DOUBLE_EQ(empty.latency_p50, 0.0);
}

// --- federated_server -------------------------------------------------------

TEST(federated_server, rejects_zero_backends_and_unmounted_shard_paths) {
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 0;
    EXPECT_THROW(federation::federated_server{cfg}, std::invalid_argument);

    cfg.num_backends = 1;
    federation::federated_server srv(cfg);  // no stores mounted
    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    service::shard_ref ref;
    ref.path = "/definitely/not/mounted.csv";
    ref.num_buildings = 1;
    s.handle(api::identify_shard_request{77, ref});
    s.finish();
    const auto errors = collected.of<api::error_response>();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].correlation_id, 77u);
    EXPECT_EQ(errors[0].code, api::error_code::bad_request);
}

TEST(federated_server, ndjson_byte_identical_to_single_service_at_every_combination) {
    const std::string root = scratch_dir("e2e");
    const data::corpus city = tiny_corpus(8);

    // The baseline: one store, one floor_service, whole corpus.
    const std::string whole_dir = (std::filesystem::path(root) / "whole").string();
    static_cast<void>(data::write_corpus_store(city, whole_dir, 3));
    const std::string baseline = single_service_ndjson(data::corpus_store::open(whole_dir));
    ASSERT_FALSE(baseline.empty());

    const federation::routing_policy policies[] = {
        federation::routing_policy::round_robin,
        federation::routing_policy::least_queue_depth,
        federation::routing_policy::content_hash_affinity,
    };
    for (const std::size_t stores : {2u, 3u}) {
        const std::vector<std::string> dirs = split_into_stores(
            city, stores, (std::filesystem::path(root) / std::to_string(stores)).string(), 2);
        for (const std::size_t backends : {1u, 2u, 4u}) {
            for (const std::size_t threads : {1u, 4u}) {
              for (const federation::routing_policy policy : policies) {
                federation::federation_config cfg;
                cfg.service = fast_service_config(threads);
                cfg.num_backends = backends;
                cfg.policy = policy;  // identity must hold under every policy
                cfg.store_dirs = dirs;
                federation::federated_server srv(cfg);
                ASSERT_EQ(srv.registry().total_buildings(), city.buildings.size());

                // The framed wire path, exactly as a network client would.
                std::stringstream wire_in, wire_out;
                api::client cli(static_cast<std::ostream&>(wire_in));
                for (const federation::mounted_shard& ms : srv.registry().shards())
                    static_cast<void>(cli.identify_shard(ms.ref));
                // Flush first so the stats snapshot sees a drained fleet.
                static_cast<void>(cli.flush());
                static_cast<void>(cli.get_stats());
                srv.serve(wire_in, wire_out);
                static_cast<void>(cli.ingest(wire_out));
                ASSERT_TRUE(cli.errors().empty());

                std::ostringstream ndjson;
                service::export_input_order(ndjson, cli.reports());
                EXPECT_EQ(ndjson.str(), baseline)
                    << stores << " stores x " << backends << " backends x " << threads
                    << " threads ("
                    << federation::routing_policy_name(cfg.policy) << ")";

                // get_stats totals equal the sum over backends.
                const auto stats = cli.last_stats();
                ASSERT_TRUE(stats.has_value());
                EXPECT_EQ(stats->buildings_done, city.buildings.size());
                EXPECT_EQ(stats->buildings_ok, city.buildings.size());
                std::size_t sum_done = 0, sum_submitted = 0, sum_hits = 0, sum_misses = 0;
                for (std::size_t k = 0; k < srv.num_backends(); ++k) {
                    const service::service_stats bs = srv.backend(k).stats();
                    sum_done += bs.buildings_done;
                    sum_submitted += bs.jobs_submitted;
                    sum_hits += bs.cache_hits;
                    sum_misses += bs.cache_misses;
                }
                EXPECT_EQ(stats->buildings_done, sum_done);
                EXPECT_EQ(stats->jobs_submitted, sum_submitted);
                EXPECT_EQ(stats->cache_hits, sum_hits);
                EXPECT_EQ(stats->cache_misses, sum_misses);
              }
            }
        }
    }
}

TEST(federated_server, affinity_keeps_resubmissions_on_warm_caches) {
    const std::size_t n = 6;
    const data::corpus city = tiny_corpus(n);

    // Baseline: a 1-backend fleet is trivially affine — every resubmission
    // hits its (only) cache.
    const auto warm_hits = [&](std::size_t backends) {
        federation::federation_config cfg;
        cfg.service = fast_service_config(1);
        cfg.num_backends = backends;
        cfg.policy = federation::routing_policy::content_hash_affinity;
        federation::federated_server srv(cfg);
        response_collector collected;
        federation::federated_server::session s = srv.open(collected.sink());
        for (std::size_t pass = 0; pass < 2; ++pass) {
            for (std::size_t i = 0; i < n; ++i) {
                api::identify_building_request req;
                req.correlation_id = 100 * pass + i;
                req.has_index = true;
                req.corpus_index = i;
                req.b = city.buildings[i];
                s.handle(api::request{req});
            }
            s.handle(api::flush_request{999 + pass});
        }
        return srv.stats().cache_hits;
    };
    const std::size_t single = warm_hits(1);
    EXPECT_EQ(single, n);  // every second-pass submission served warm
    // Content-hash affinity on a fleet keeps the warm-cache hit rate at the
    // single-backend baseline: repeats land where their result lives.
    EXPECT_GE(warm_hits(3), single);
}

TEST(federated_server, identify_resident_resolves_names_and_fresh_bypasses_cache) {
    const std::size_t n = 4;
    const std::string root = scratch_dir("resident");
    const data::corpus city = tiny_corpus(n);
    const std::vector<std::string> dirs = split_into_stores(city, 2, root, 1);

    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.store_dirs = dirs;
    federation::federated_server srv(cfg);
    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());

    // Resolve every building by name; each answer carries its request's
    // correlation id and the right building's report.
    for (std::size_t i = 0; i < n; ++i) {
        api::identify_resident_request req;
        req.correlation_id = 100 + i;
        req.name = city.buildings[i].name;
        s.handle(api::request{req});
    }
    s.handle(api::flush_request{1});
    const std::vector<api::building_response> first = collected.of<api::building_response>();
    ASSERT_EQ(first.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto it = std::find_if(first.begin(), first.end(), [&](const auto& b) {
            return b.correlation_id == 100 + i;
        });
        ASSERT_NE(it, first.end()) << "no response for resident " << i;
        EXPECT_EQ(it->report.name, city.buildings[i].name);
        EXPECT_TRUE(it->report.ok);
    }

    // A warm repeat by name is served from the result cache...
    const std::size_t hits_before = srv.stats().cache_hits;
    api::identify_resident_request warm;
    warm.correlation_id = 200;
    warm.name = city.buildings[0].name;
    s.handle(api::request{warm});
    s.handle(api::flush_request{2});
    EXPECT_EQ(srv.stats().cache_hits, hits_before + 1);

    // ...and `fresh` forwards as no_cache: the pipeline reruns.
    api::identify_resident_request fresh;
    fresh.correlation_id = 201;
    fresh.name = city.buildings[0].name;
    fresh.fresh = true;
    s.handle(api::request{fresh});
    s.handle(api::flush_request{3});
    EXPECT_EQ(srv.stats().cache_hits, hits_before + 1);  // no new hit
    ASSERT_EQ(collected.of<api::building_response>().size(), n + 2);

    // An unknown name answers a typed bad_request, not a hang or a crash.
    api::identify_resident_request unknown;
    unknown.correlation_id = 999;
    unknown.name = "no-such-building";
    s.handle(api::request{unknown});
    const std::vector<api::error_response> errors = collected.of<api::error_response>();
    const auto err = std::find_if(errors.begin(), errors.end(),
                                  [](const auto& e) { return e.correlation_id == 999; });
    ASSERT_NE(err, errors.end());
    EXPECT_EQ(err->code, api::error_code::bad_request);
}

TEST(federated_server, least_queue_depth_never_routes_to_paused_backend) {
    const std::size_t n = 5;
    const data::corpus city = tiny_corpus(n);
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.policy = federation::routing_policy::least_queue_depth;
    federation::federated_server srv(cfg);

    srv.backend(1).backing_service().pause();
    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    for (std::size_t i = 0; i < n; ++i) {
        api::identify_building_request req;
        req.correlation_id = i;
        req.b = city.buildings[i];
        s.handle(api::request{req});
    }
    s.handle(api::flush_request{50});  // backend 1 is paused but empty: drains
    EXPECT_EQ(srv.backend(1).stats().jobs_submitted, 0u);
    EXPECT_EQ(srv.backend(0).stats().jobs_submitted, n);
    EXPECT_EQ(collected.of<api::building_response>().size(), n);
    srv.backend(1).backing_service().resume();
}

TEST(federated_server, every_policy_drains_cleanly_on_flush) {
    const std::size_t n = 4;
    const std::string root = scratch_dir("drain");
    const data::corpus city = tiny_corpus(n);
    const std::vector<std::string> dirs = split_into_stores(city, 2, root, 1);

    for (const federation::routing_policy policy :
         {federation::routing_policy::round_robin,
          federation::routing_policy::least_queue_depth,
          federation::routing_policy::content_hash_affinity}) {
        federation::federation_config cfg;
        cfg.service = fast_service_config(2);
        cfg.num_backends = 2;
        cfg.policy = policy;
        cfg.store_dirs = dirs;
        federation::federated_server srv(cfg);
        response_collector collected;
        federation::federated_server::session s = srv.open(collected.sink());
        for (const federation::mounted_shard& ms : srv.registry().shards())
            s.handle(api::identify_shard_request{ms.ref.first_index + 1, ms.ref});
        s.handle(api::flush_request{1000});
        // After the flush answered, nothing is pending anywhere.
        const service::service_stats stats = srv.stats();
        EXPECT_EQ(stats.buildings_done, n) << federation::routing_policy_name(policy);
        EXPECT_EQ(stats.jobs_queued, 0u);
        EXPECT_EQ(stats.jobs_running, 0u);
        EXPECT_EQ(collected.of<api::flush_response>().size(), 1u);
        EXPECT_EQ(collected.of<api::building_response>().size(), n);
    }
}

TEST(federated_server, cancel_routes_to_owning_backend_and_unknown_ids_answer_false) {
    const data::corpus city = tiny_corpus(2);
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.policy = federation::routing_policy::round_robin;
    federation::federated_server srv(cfg);

    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());

    // Hold the fleet so the cancel deterministically lands before the job.
    srv.pause();
    api::identify_building_request req;
    req.correlation_id = 7;
    req.b = city.buildings[0];
    s.handle(api::request{req});
    s.handle(api::cancel_job_request{8, 7});    // known target → its backend answers
    s.handle(api::cancel_job_request{9, 404});  // unknown target → front-end answers
    srv.resume();
    s.handle(api::flush_request{10});

    const auto cancels = collected.of<api::cancel_response>();
    ASSERT_EQ(cancels.size(), 2u);
    EXPECT_EQ(cancels[0].correlation_id, 8u);
    EXPECT_EQ(cancels[0].target_correlation_id, 7u);
    EXPECT_TRUE(cancels[0].accepted);
    EXPECT_EQ(cancels[1].correlation_id, 9u);
    EXPECT_FALSE(cancels[1].accepted);

    const auto buildings = collected.of<api::building_response>();
    ASSERT_EQ(buildings.size(), 1u);
    EXPECT_FALSE(buildings[0].report.ok);
    EXPECT_EQ(buildings[0].report.error, "cancelled");
}

// --- fault injection + fault tolerance ---------------------------------------

TEST(fault_plan, parses_specs_and_rejects_garbage) {
    const std::vector<service::fault_plan> plans =
        service::parse_fault_plans("0:fail_every=3,hang_ms=200;2:crash_on_submit=1", 3);
    ASSERT_EQ(plans.size(), 3u);
    EXPECT_EQ(plans[0].fail_every, 3u);
    EXPECT_EQ(plans[0].hang_ms, 200u);
    EXPECT_FALSE(plans[0].crash_on_submit);
    EXPECT_FALSE(plans[1].any());
    EXPECT_TRUE(plans[2].crash_on_submit);
    EXPECT_TRUE(plans[2].any());

    EXPECT_TRUE(service::parse_fault_plans("", 2).empty() ||
                !service::parse_fault_plans("", 2)[0].any());

    EXPECT_THROW(service::parse_fault_plans("5:fail_every=1", 2), std::invalid_argument);
    EXPECT_THROW(service::parse_fault_plans("0:warp_core=1", 2), std::invalid_argument);
    EXPECT_THROW(service::parse_fault_plans("0:fail_every=x", 2), std::invalid_argument);
    EXPECT_THROW(service::parse_fault_plans("nonsense", 2), std::invalid_argument);

    EXPECT_TRUE(service::is_transient_fault(
        std::string(service::k_transient_error_prefix) + "injected failure (execution #1)"));
    EXPECT_FALSE(service::is_transient_fault("pipeline diverged"));
}

/// Run \p count pinned-index building requests through \p srv and return
/// the input-order NDJSON of the collected reports (empty string when any
/// request erred or went missing — the caller asserts against that).
std::string protected_campaign_ndjson(federation::federated_server& srv, std::size_t count) {
    const data::corpus city = tiny_corpus(count);
    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    for (std::size_t i = 0; i < count; ++i) {
        api::identify_building_request req;
        req.correlation_id = i + 1;
        req.has_index = true;
        req.corpus_index = i;
        req.b = city.buildings[i];
        s.handle(api::request{req});
    }
    s.handle(api::flush_request{9999});
    s.finish();

    EXPECT_TRUE(collected.of<api::error_response>().empty());
    std::vector<runtime::building_report> reports;
    for (const api::building_response& b : collected.of<api::building_response>())
        reports.push_back(b.report);
    if (reports.size() != count) return {};
    std::ostringstream out;
    service::export_input_order(out, std::move(reports));
    return out.str();
}

TEST(fault_tolerant_fleet, transient_failures_retry_to_byte_identical_ndjson) {
    // Baseline: the same campaign through a healthy, unprotected fleet.
    federation::federation_config healthy;
    healthy.service = fast_service_config(1);
    healthy.num_backends = 2;
    federation::federated_server healthy_srv(healthy);
    const std::string baseline = protected_campaign_ndjson(healthy_srv, 6);
    ASSERT_FALSE(baseline.empty());
    EXPECT_FALSE(healthy_srv.health().has_value());  // protection off: no snapshot

    // Every third execution on backend 0 fails transiently; the fleet must
    // retry/failover to the exact same bytes.
    federation::federation_config cfg = healthy;
    cfg.policy = federation::routing_policy::round_robin;
    cfg.fault_plans = service::parse_fault_plans("0:fail_every=3", 2);
    federation::federated_server srv(cfg);
    EXPECT_EQ(protected_campaign_ndjson(srv, 6), baseline);

    const std::optional<federation::health_snapshot> health = srv.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_GE(health->retries, 1u);
    EXPECT_EQ(health->backend_unavailable, 0u);
    EXPECT_EQ(health->deadline_exceeded, 0u);
}

TEST(fault_tolerant_fleet, submit_crashes_fail_over_and_trip_the_breaker) {
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.policy = federation::routing_policy::round_robin;
    cfg.fault_plans = service::parse_fault_plans("0:crash_on_submit=1", 2);
    cfg.fault_tolerance.breaker_cooldown = std::chrono::milliseconds(60000);  // stay tripped
    federation::federated_server srv(cfg);

    EXPECT_FALSE(protected_campaign_ndjson(srv, 8).empty());
    EXPECT_EQ(srv.backend(0).stats().jobs_submitted, 0u);  // crashed before enqueue
    EXPECT_EQ(srv.backend(1).stats().buildings_ok, 8u);

    const std::optional<federation::health_snapshot> health = srv.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_GE(health->failovers, 1u);
    ASSERT_EQ(health->backend_up.size(), 2u);
    EXPECT_FALSE(health->backend_up[0]);  // three straight crashes: breaker open
    EXPECT_TRUE(health->backend_up[1]);
}

TEST(fault_tolerant_fleet, exhausted_retries_answer_typed_backend_unavailable) {
    // One backend that always fails transiently: nowhere to fail over, so
    // after max_attempts the client gets a typed error, not a hang.
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 1;
    cfg.fault_plans = service::parse_fault_plans("0:fail_every=1", 1);
    cfg.fault_tolerance.max_attempts = 3;
    federation::federated_server srv(cfg);

    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    api::identify_building_request req;
    req.correlation_id = 42;
    req.has_index = true;
    req.corpus_index = 0;
    req.b = tiny_building(0);
    s.handle(api::request{req});
    s.finish();

    EXPECT_TRUE(collected.of<api::building_response>().empty());
    const auto errors = collected.of<api::error_response>();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].correlation_id, 42u);
    EXPECT_EQ(errors[0].code, api::error_code::backend_unavailable);
    EXPECT_NE(errors[0].message.find("3 attempts"), std::string::npos) << errors[0].message;

    const std::optional<federation::health_snapshot> health = srv.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->backend_unavailable, 1u);
    EXPECT_EQ(health->retries, 2u);  // attempts 2 and 3
}

TEST(fault_tolerant_fleet, deadline_cancels_hung_backend_and_fails_over) {
    // Backend 0 hangs far longer than the deadline; the expiry must cancel
    // the hung attempt and reroute, and every request must still finish ok.
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.policy = federation::routing_policy::round_robin;
    cfg.fault_plans = service::parse_fault_plans("0:hang_ms=60000", 2);
    cfg.fault_tolerance.request_timeout = std::chrono::milliseconds(2000);
    federation::federated_server srv(cfg);

    EXPECT_FALSE(protected_campaign_ndjson(srv, 2).empty());

    const std::optional<federation::health_snapshot> health = srv.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_GE(health->retries, 1u);          // at least one expired attempt rerouted
    EXPECT_EQ(health->deadline_exceeded, 0u);  // nothing exhausted its deadline outright
}

TEST(fault_tolerant_fleet, half_open_probe_readmits_a_recovered_backend) {
    // Backend 0 fails its first three executions (tripping the breaker),
    // then recovers; after the cooldown one probe must readmit it.
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.policy = federation::routing_policy::round_robin;
    cfg.fault_plans = service::parse_fault_plans("0:fail_first=3", 2);
    cfg.fault_tolerance.breaker_failure_threshold = 3;
    cfg.fault_tolerance.breaker_cooldown = std::chrono::milliseconds(300);
    federation::federated_server srv(cfg);

    EXPECT_FALSE(protected_campaign_ndjson(srv, 6).empty());
    {
        const std::optional<federation::health_snapshot> health = srv.health();
        ASSERT_TRUE(health.has_value());
        EXPECT_FALSE(health->backend_up[0]) << "three straight failures should trip";
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(400));  // past the cooldown
    EXPECT_FALSE(protected_campaign_ndjson(srv, 6).empty());
    {
        const std::optional<federation::health_snapshot> health = srv.health();
        ASSERT_TRUE(health.has_value());
        EXPECT_TRUE(health->backend_up[0]) << "a successful probe should close the breaker";
    }
    EXPECT_GT(srv.backend(0).stats().buildings_ok, 0u);  // really readmitted
}

TEST(fault_tolerant_fleet, shard_submission_fails_over_on_submit_crash) {
    const std::string root = scratch_dir("shard_crash");
    const data::corpus city = tiny_corpus(4);
    const std::string whole_dir = (std::filesystem::path(root) / "whole").string();
    static_cast<void>(data::write_corpus_store(city, whole_dir, 1));
    const std::string baseline = single_service_ndjson(data::corpus_store::open(whole_dir));

    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.store_dirs = {whole_dir};
    cfg.policy = federation::routing_policy::round_robin;
    cfg.fault_plans = service::parse_fault_plans("0:crash_on_submit=1", 2);
    federation::federated_server srv(cfg);

    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    for (const federation::mounted_shard& ms : srv.registry().shards())
        s.handle(api::identify_shard_request{ms.ref.first_index + 1, ms.ref});
    s.handle(api::flush_request{500});
    s.finish();

    EXPECT_TRUE(collected.of<api::error_response>().empty());
    std::vector<runtime::building_report> reports;
    for (const api::building_response& b : collected.of<api::building_response>())
        reports.push_back(b.report);
    std::ostringstream out;
    service::export_input_order(out, std::move(reports));
    EXPECT_EQ(out.str(), baseline);

    const std::optional<federation::health_snapshot> health = srv.health();
    ASSERT_TRUE(health.has_value());
    EXPECT_GE(health->failovers, 1u);
}

TEST(fault_tolerant_fleet, shard_submission_with_no_survivor_answers_typed_error) {
    const std::string root = scratch_dir("shard_dead");
    const data::corpus city = tiny_corpus(1);
    const std::string dir = (std::filesystem::path(root) / "store").string();
    static_cast<void>(data::write_corpus_store(city, dir, 1));

    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 1;
    cfg.store_dirs = {dir};
    cfg.fault_plans = service::parse_fault_plans("0:crash_on_submit=1", 1);
    federation::federated_server srv(cfg);

    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    const federation::mounted_shard ms = srv.registry().shards().at(0);
    s.handle(api::identify_shard_request{11, ms.ref});
    s.finish();

    const auto errors = collected.of<api::error_response>();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].correlation_id, 11u);
    EXPECT_EQ(errors[0].code, api::error_code::backend_unavailable);
    EXPECT_TRUE(collected.of<api::building_response>().empty());
}

TEST(fault_tolerant_fleet, rejects_misshapen_fault_plan_vector) {
    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.fault_plans.resize(1);  // neither empty nor one-per-backend
    EXPECT_THROW(federation::federated_server{cfg}, std::invalid_argument);
}

// --- live ingestion ---------------------------------------------------------

/// A fresh batch of scans for the schedule's building \p i: same name, a
/// different seed — folding them in moves the building's content hash.
data::building fresh_scans_for(std::size_t i, std::uint64_t seed) {
    sim::building_spec spec;
    spec.name = "fed-" + std::to_string(i);
    spec.num_floors = 3 + i % 2;
    spec.samples_per_floor = 8;
    spec.aps_per_floor = 6;
    spec.seed = seed;
    return sim::generate_building(spec).building;
}

/// Cold-rebuild baseline: one unfederated service over \p bs at pinned
/// indices [0, N) — what the served-after-append bytes must reproduce.
std::string cold_rebuild_ndjson(const std::vector<data::building>& bs) {
    service::floor_service svc(fast_service_config(1));
    std::mutex m;
    std::vector<runtime::building_report> reports;
    std::vector<service::floor_service::job> jobs;
    jobs.reserve(bs.size());
    for (std::size_t i = 0; i < bs.size(); ++i)
        jobs.push_back(svc.submit(bs[i], i, [&](const runtime::building_report& r) {
            const std::lock_guard<std::mutex> lock(m);
            reports.push_back(r);
        }));
    svc.wait_all();
    std::ostringstream out;
    service::export_input_order(out, std::move(reports));
    return out.str();
}

TEST(fault_plan, parses_and_bounds_crash_on_append) {
    const std::vector<service::fault_plan> plans =
        service::parse_fault_plans("0:crash_on_append=2", 2);
    EXPECT_EQ(plans[0].crash_on_append, 2u);
    EXPECT_TRUE(plans[0].any());
    EXPECT_EQ(plans[1].crash_on_append, 0u);
    // Only the two real checkpoints exist; anything else is a typo.
    EXPECT_THROW(service::parse_fault_plans("0:crash_on_append=3", 2),
                 std::invalid_argument);
    EXPECT_THROW(service::parse_fault_plans("0:crash_on_append=0", 2),
                 std::invalid_argument);
}

TEST(live_ingestion, append_reindexes_dirty_and_reserves_clean_from_cache) {
    const std::string root = scratch_dir("ingest_main");
    const data::corpus city = tiny_corpus(4);
    const std::vector<std::string> dirs = split_into_stores(city, 1, root, 2);
    const std::string corpus_name = "fed-city-part-0";

    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.store_dirs = dirs;
    federation::federated_server srv(cfg);

    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());

    // Warm campaign: the base corpus lands in the backend result caches.
    for (std::size_t i = 0; i < city.buildings.size(); ++i) {
        api::identify_building_request req;
        req.correlation_id = i + 1;
        req.has_index = true;
        req.corpus_index = i;
        req.b = city.buildings[i];
        s.handle(api::request{req});
    }
    s.handle(api::flush_request{100});

    // Subscribe to the building the append will touch, then append: new
    // scans for fed-1 plus a brand-new building.
    s.handle(api::request{api::watch_request{500, "fed-1", true}});
    api::append_scans_request ap;
    ap.correlation_id = 600;
    ap.corpus_name = corpus_name;
    ap.records = {fresh_scans_for(1, 7777), fresh_scans_for(9, 7778)};
    s.handle(api::request{std::move(ap)});
    // Flush is the barrier: append durable, dirty re-runs answered, AND the
    // subscriber's push delivered.
    s.handle(api::flush_request{101});

    const auto acks = collected.of<api::watch_ack_response>();
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_TRUE(acks[0].active);

    const auto appends = collected.of<api::append_response>();
    ASSERT_EQ(appends.size(), 1u);
    EXPECT_EQ(appends[0].correlation_id, 600u);
    EXPECT_EQ(appends[0].version, 1u);
    EXPECT_EQ(appends[0].accepted, 2u);
    EXPECT_EQ(appends[0].dirty, 2u);  // the touched building + the new one

    // Exactly one push — for the subscribed (touched) building only; the
    // new building fed-9 was re-run too but nobody watches it.
    const auto pushes = collected.of<api::push_response>();
    ASSERT_EQ(pushes.size(), 1u);
    EXPECT_EQ(pushes[0].correlation_id, 500u);
    EXPECT_EQ(pushes[0].version, 1u);
    EXPECT_TRUE(pushes[0].report.ok);
    EXPECT_EQ(pushes[0].report.name, "fed-1");
    EXPECT_EQ(pushes[0].report.index, 1u);

    const service::service_stats mid = srv.stats();
    EXPECT_EQ(mid.ingest_appends, 1u);
    EXPECT_EQ(mid.ingest_dirty_buildings, 2u);
    EXPECT_EQ(mid.watch_subscribers, 1u);

    // Re-serve the effective corpus: every building — clean and dirty —
    // answers from cache, with zero pipeline re-runs.
    const data::corpus effective = data::corpus_store::open(dirs[0]).load_all_effective();
    ASSERT_EQ(effective.buildings.size(), 5u);
    for (std::size_t i = 0; i < effective.buildings.size(); ++i) {
        api::identify_building_request req;
        req.correlation_id = 800 + i;
        req.has_index = true;
        req.corpus_index = i;
        req.b = effective.buildings[i];
        s.handle(api::request{req});
    }
    s.handle(api::flush_request{102});
    s.finish();

    const service::service_stats after = srv.stats();
    EXPECT_GE(after.cache_hits - mid.cache_hits, effective.buildings.size());
    EXPECT_EQ(after.buildings_done, mid.buildings_done);

    // (a) of the acceptance bar: served == cold rebuild over the
    // concatenated (base + delta) corpus, byte for byte.
    std::vector<runtime::building_report> served;
    for (const api::building_response& b : collected.of<api::building_response>())
        if (b.correlation_id >= 800) served.push_back(b.report);
    ASSERT_EQ(served.size(), effective.buildings.size());
    std::ostringstream served_out;
    service::export_input_order(served_out, std::move(served));
    EXPECT_EQ(served_out.str(), cold_rebuild_ndjson(effective.buildings));

    // Unsubscribing drops the gauge back to zero.
    s.handle(api::request{api::watch_request{501, "fed-1", false}});
    EXPECT_EQ(srv.stats().watch_subscribers, 0u);
}

TEST(live_ingestion, slow_reads_during_reindex_serialise_appends_and_stay_correct) {
    const std::string root = scratch_dir("ingest_slow");
    const data::corpus city = tiny_corpus(3);
    const std::vector<std::string> dirs = split_into_stores(city, 1, root, 2);

    federation::federation_config cfg;
    cfg.service = fast_service_config(1);
    cfg.num_backends = 2;
    cfg.store_dirs = dirs;
    // The store owner's disk is degraded: every streamed building sleeps.
    // Appends must still serialise (version 1 then 2) and serve correctly.
    cfg.fault_plans = service::parse_fault_plans("0:slow_read_ms=2", 2);
    federation::federated_server srv(cfg);

    response_collector collected;
    federation::federated_server::session s = srv.open(collected.sink());
    for (const std::size_t touch : {0u, 2u}) {
        api::append_scans_request ap;
        ap.correlation_id = 600 + touch;
        ap.corpus_name = "fed-city-part-0";
        ap.records = {fresh_scans_for(touch, 5000 + touch)};
        s.handle(api::request{std::move(ap)});
    }
    s.handle(api::flush_request{101});
    s.finish();

    const auto appends = collected.of<api::append_response>();
    ASSERT_EQ(appends.size(), 2u);
    EXPECT_EQ(appends[0].version, 1u);
    EXPECT_EQ(appends[0].dirty, 1u);
    EXPECT_EQ(appends[1].version, 2u);
    EXPECT_EQ(appends[1].dirty, 1u);
    EXPECT_TRUE(collected.of<api::error_response>().empty());

    const data::corpus_store store = data::corpus_store::open(dirs[0]);
    EXPECT_EQ(store.manifest().version, 2u);

    // Served-after == cold rebuild, with the slow disk still in the plan.
    const data::corpus effective = store.load_all_effective();
    response_collector reserve;
    federation::federated_server::session s2 = srv.open(reserve.sink());
    for (std::size_t i = 0; i < effective.buildings.size(); ++i) {
        api::identify_building_request req;
        req.correlation_id = i + 1;
        req.has_index = true;
        req.corpus_index = i;
        req.b = effective.buildings[i];
        s2.handle(api::request{req});
    }
    s2.handle(api::flush_request{900});
    s2.finish();
    std::vector<runtime::building_report> served;
    for (const api::building_response& b : reserve.of<api::building_response>())
        served.push_back(b.report);
    std::ostringstream served_out;
    service::export_input_order(served_out, std::move(served));
    EXPECT_EQ(served_out.str(), cold_rebuild_ndjson(effective.buildings));
}

TEST(live_ingestion, crash_mid_append_leaves_manifest_intact_for_warm_restart) {
#ifdef FISONE_TSAN
    GTEST_SKIP() << "fork-based death test; the CI ingestion chaos smoke "
                    "covers the crash drill under every build";
#endif
    const std::string root = scratch_dir("ingest_crash");
    const data::corpus city = tiny_corpus(2);
    const std::vector<std::string> dirs = split_into_stores(city, 1, root, 2);

    // Both abort checkpoints: after the delta shard but before the manifest
    // temp, and after the temp but before the rename. The child process
    // dies exactly as kill -9 would; the torn on-disk state it leaves is
    // what the warm restart below must shrug off.
    for (const std::uint32_t step : {1u, 2u}) {
        const auto doomed_append = [&dirs, step] {
            federation::federation_config cfg;
            cfg.service = fast_service_config(1);
            cfg.num_backends = 2;
            cfg.store_dirs = dirs;
            cfg.fault_plans = service::parse_fault_plans(
                "0:crash_on_append=" + std::to_string(step), 2);
            federation::federated_server srv(cfg);
            response_collector collected;
            federation::federated_server::session s = srv.open(collected.sink());
            api::append_scans_request ap;
            ap.correlation_id = 1;
            ap.corpus_name = "fed-city-part-0";
            ap.records = {fresh_scans_for(0, 4444)};
            s.handle(api::request{std::move(ap)});
            s.finish();  // never returns: the append worker aborts first
        };
        EXPECT_DEATH(doomed_append(), "");

        // The committed manifest never moved — the append is invisible.
        EXPECT_EQ(data::corpus_store::open(dirs[0]).manifest().version, 0u)
            << "checkpoint " << step;
    }

    // Warm restart over the torn directory: mount sweeps the leftovers and
    // serves exactly the pre-append corpus.
    {
        federation::federation_config cfg;
        cfg.service = fast_service_config(1);
        cfg.num_backends = 2;
        cfg.store_dirs = dirs;
        federation::federated_server srv(cfg);
        EXPECT_EQ(protected_campaign_ndjson(srv, 2), cold_rebuild_ndjson(city.buildings));

        // And the interrupted append, retried for real, lands exactly once.
        response_collector collected;
        federation::federated_server::session s = srv.open(collected.sink());
        api::append_scans_request ap;
        ap.correlation_id = 1;
        ap.corpus_name = "fed-city-part-0";
        ap.records = {fresh_scans_for(0, 4444)};
        s.handle(api::request{std::move(ap)});
        s.handle(api::flush_request{2});
        s.finish();
        const auto appends = collected.of<api::append_response>();
        ASSERT_EQ(appends.size(), 1u);
        EXPECT_EQ(appends[0].version, 1u);
        const data::corpus_store store = data::corpus_store::open(dirs[0]);
        EXPECT_EQ(store.manifest().version, 1u);
        ASSERT_EQ(store.manifest().deltas.size(), 1u);
        EXPECT_EQ(store.load_all_effective().buildings.size(), 2u);
    }
}

}  // namespace
