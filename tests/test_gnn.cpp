// Tests for src/gnn: RF-GNN construction, training dynamics, embedding
// geometry (same-floor proximity), attention ablation, inductive inference.

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/rf_gnn.hpp"
#include "graph/bipartite_graph.hpp"
#include "linalg/matrix.hpp"
#include "sim/building_generator.hpp"
#include "util/stats.hpp"

namespace {

using namespace fisone;

/// Small but realistic building shared by the expensive tests.
const data::building& test_building() {
    static const data::building b = [] {
        sim::building_spec spec;
        spec.num_floors = 3;
        spec.samples_per_floor = 60;
        spec.aps_per_floor = 12;
        spec.model.path_loss_exponent = 3.3;
        spec.floor_width_m = 60.0;
        spec.floor_depth_m = 40.0;
        spec.seed = 41;
        return sim::generate_building(spec).building;
    }();
    return b;
}

gnn::rf_gnn_config fast_config() {
    gnn::rf_gnn_config cfg;
    cfg.embedding_dim = 16;
    cfg.epochs = 4;
    cfg.walks.walks_per_node = 3;
    cfg.seed = 5;
    return cfg;
}

TEST(rf_gnn, rejects_degenerate_configs) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn_config cfg;
    cfg.embedding_dim = 0;
    EXPECT_THROW(gnn::rf_gnn(g, cfg), std::invalid_argument);
    cfg = gnn::rf_gnn_config{};
    cfg.num_hops = 0;
    EXPECT_THROW(gnn::rf_gnn(g, cfg), std::invalid_argument);
    cfg = gnn::rf_gnn_config{};
    cfg.neighbor_samples = 0;
    EXPECT_THROW(gnn::rf_gnn(g, cfg), std::invalid_argument);
}

TEST(rf_gnn, parameter_shapes) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn_config cfg = fast_config();
    cfg.num_hops = 3;
    gnn::rf_gnn model(g, cfg);
    EXPECT_EQ(model.base_embeddings().rows(), g.num_nodes());
    EXPECT_EQ(model.base_embeddings().cols(), cfg.embedding_dim);
    ASSERT_EQ(model.hop_weights().size(), 3u);
    for (const auto& w : model.hop_weights()) {
        EXPECT_EQ(w.rows(), 2 * cfg.embedding_dim);
        EXPECT_EQ(w.cols(), cfg.embedding_dim);
    }
}

TEST(rf_gnn, embeddings_are_unit_rows) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn model(g, fast_config());
    model.train_epoch();
    const auto emb = model.embed_samples();
    EXPECT_EQ(emb.rows(), g.num_samples());
    for (std::size_t i = 0; i < emb.rows(); ++i)
        EXPECT_NEAR(linalg::norm2(emb.row(i)), 1.0, 1e-9);
}

TEST(rf_gnn, training_moves_loss_below_random_baseline) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn_config cfg = fast_config();
    cfg.epochs = 6;
    gnn::rf_gnn model(g, cfg);
    double last = 0.0;
    for (std::size_t e = 0; e < cfg.epochs; ++e) last = model.train_epoch();
    // Random unit vectors give E[loss] = (1+τ)·log 2 ≈ 3.47 for τ = 4.
    const double random_baseline = (1.0 + static_cast<double>(cfg.negatives)) * std::log(2.0);
    EXPECT_LT(last, random_baseline);
}

TEST(rf_gnn, training_is_deterministic_per_seed) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn a(g, fast_config());
    gnn::rf_gnn b(g, fast_config());
    a.train();
    b.train();
    const auto ea = a.embed_samples();
    const auto eb = b.embed_samples();
    for (std::size_t i = 0; i < ea.size(); ++i)
        EXPECT_DOUBLE_EQ(ea.flat()[i], eb.flat()[i]);
}

TEST(rf_gnn, same_floor_samples_are_closer) {
    const auto& building = test_building();
    const auto g = graph::bipartite_graph::from_building(building);
    gnn::rf_gnn_config cfg = fast_config();
    cfg.epochs = 8;
    gnn::rf_gnn model(g, cfg);
    model.train();
    const auto emb = model.embed_samples();

    util::running_stats same, cross;
    util::rng gen(17);
    for (int t = 0; t < 4000; ++t) {
        const std::size_t i = gen.uniform_index(emb.rows());
        const std::size_t j = gen.uniform_index(emb.rows());
        if (i == j) continue;
        const double d = linalg::euclidean_distance(emb.row(i), emb.row(j));
        if (building.samples[i].true_floor == building.samples[j].true_floor)
            same.add(d);
        else
            cross.add(d);
    }
    EXPECT_LT(same.mean(), cross.mean());
}

TEST(rf_gnn, attention_beats_uniform_on_floor_separation) {
    // The Fig. 8(a,b) ablation at unit-test scale: the margin between
    // cross-floor and same-floor distances should be larger with attention.
    const auto& building = test_building();
    const auto g = graph::bipartite_graph::from_building(building);

    auto separation = [&](bool attention) {
        gnn::rf_gnn_config cfg = fast_config();
        cfg.use_attention = attention;
        cfg.epochs = 8;
        gnn::rf_gnn model(g, cfg);
        model.train();
        const auto emb = model.embed_samples();
        util::running_stats same, cross;
        util::rng gen(18);
        for (int t = 0; t < 4000; ++t) {
            const std::size_t i = gen.uniform_index(emb.rows());
            const std::size_t j = gen.uniform_index(emb.rows());
            if (i == j) continue;
            const double d = linalg::euclidean_distance(emb.row(i), emb.row(j));
            (building.samples[i].true_floor == building.samples[j].true_floor ? same : cross)
                .add(d);
        }
        return cross.mean() - same.mean();
    };
    EXPECT_GT(separation(true), separation(false));
}

TEST(rf_gnn, inductive_embedding_close_to_transductive) {
    // Embed a scan that IS in the graph via the inductive path and compare
    // with its transductive embedding. They correlate strongly but are not
    // identical: the inductive path synthesises the base vector from MAC
    // embeddings instead of the node's trained base vector.
    const auto& building = test_building();
    const auto g = graph::bipartite_graph::from_building(building);
    gnn::rf_gnn model(g, fast_config());
    model.train();
    const auto emb = model.embed_samples();

    util::running_stats agreement;
    for (std::size_t i = 0; i < 20; ++i) {
        const auto inductive = model.embed_new_sample(building.samples[i].observations);
        agreement.add(linalg::cosine_similarity(inductive, emb.row(i)));
    }
    EXPECT_GT(agreement.mean(), 0.45);
}

TEST(rf_gnn, inductive_embedding_lands_near_true_floor) {
    const auto& building = test_building();
    const auto g = graph::bipartite_graph::from_building(building);
    gnn::rf_gnn_config cfg = fast_config();
    cfg.epochs = 8;
    gnn::rf_gnn model(g, cfg);
    model.train();
    const auto emb = model.embed_samples();

    // Synthesize a "new" scan by perturbing an existing one's RSS slightly.
    int correct = 0;
    const int trials = 30;
    util::rng gen(19);
    for (int t = 0; t < trials; ++t) {
        const std::size_t src = gen.uniform_index(building.samples.size());
        auto obs = building.samples[src].observations;
        for (auto& o : obs) o.rss_dbm = std::max(-110.0, o.rss_dbm + gen.normal(0.0, 1.0));
        const auto rep = model.embed_new_sample(obs);
        // nearest existing sample
        std::size_t best = 0;
        double best_d = 1e18;
        for (std::size_t i = 0; i < emb.rows(); ++i) {
            const double d = linalg::squared_distance(rep, emb.row(i));
            if (d < best_d) {
                best_d = d;
                best = i;
            }
        }
        if (building.samples[best].true_floor == building.samples[src].true_floor) ++correct;
    }
    EXPECT_GE(correct, trials * 8 / 10);
}

TEST(rf_gnn, inductive_rejects_unknown_macs_only) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn model(g, fast_config());
    model.train_epoch();
    std::vector<data::rf_observation> unknown{{9999, -50.0}};
    EXPECT_THROW((void)model.embed_new_sample(unknown), std::invalid_argument);
    // mixed known/unknown works
    std::vector<data::rf_observation> mixed{{9999, -50.0}, {0, -60.0}};
    EXPECT_NO_THROW((void)model.embed_new_sample(mixed));
}

TEST(rf_gnn, activation_variants_run) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    for (const auto act : {gnn::activation::tanh, gnn::activation::relu,
                           gnn::activation::sigmoid}) {
        gnn::rf_gnn_config cfg = fast_config();
        cfg.act = act;
        cfg.epochs = 1;
        gnn::rf_gnn model(g, cfg);
        EXPECT_NO_THROW(model.train());
        EXPECT_EQ(model.embed_samples().rows(), g.num_samples());
    }
}

TEST(rf_gnn, frozen_base_embeddings_do_not_move) {
    const auto g = graph::bipartite_graph::from_building(test_building());
    gnn::rf_gnn_config cfg = fast_config();
    cfg.train_base_embeddings = false;
    cfg.epochs = 2;
    gnn::rf_gnn model(g, cfg);
    const auto before = model.base_embeddings();
    model.train();
    EXPECT_EQ(model.base_embeddings(), before);
}

}  // namespace
