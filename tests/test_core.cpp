// End-to-end tests for src/core: the full FIS-ONE pipeline on simulated
// buildings, both label protocols, ablation switches, and the baseline
// adapter.

#include <gtest/gtest.h>

#include <set>

#include "core/fis_one.hpp"
#include "eval/metrics.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone;

data::building make_building(std::size_t floors, std::uint64_t seed,
                             std::size_t samples_per_floor = 60) {
    sim::building_spec spec;
    spec.num_floors = floors;
    spec.samples_per_floor = samples_per_floor;
    spec.aps_per_floor = 12;
    spec.model.path_loss_exponent = 3.3;
    spec.floor_width_m = 60.0;
    spec.floor_depth_m = 40.0;
    spec.seed = seed;
    return sim::generate_building(spec).building;
}

core::fis_one_config fast_config(std::uint64_t seed = 7) {
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 16;
    cfg.gnn.epochs = 6;
    cfg.gnn.walks.walks_per_node = 3;
    cfg.gnn.seed = seed;
    cfg.seed = seed;
    return cfg;
}

TEST(fis_one, end_to_end_high_quality_on_easy_building) {
    const auto b = make_building(3, 71);
    const auto r = core::fis_one(fast_config()).run(b);
    EXPECT_GT(r.ari, 0.6);
    EXPECT_GT(r.nmi, 0.6);
    EXPECT_GT(r.edit_distance, 0.66);
    EXPECT_FALSE(r.ambiguous);
}

TEST(fis_one, result_structure_is_consistent) {
    const auto b = make_building(4, 72);
    const auto r = core::fis_one(fast_config()).run(b);

    ASSERT_EQ(r.assignment.size(), b.samples.size());
    ASSERT_EQ(r.predicted_floor.size(), b.samples.size());
    ASSERT_EQ(r.cluster_to_floor.size(), b.num_floors);
    EXPECT_EQ(r.embeddings.rows(), b.samples.size());

    // cluster_to_floor is a permutation of 0..N-1
    std::set<int> floors(r.cluster_to_floor.begin(), r.cluster_to_floor.end());
    EXPECT_EQ(floors.size(), b.num_floors);
    EXPECT_EQ(*floors.begin(), 0);

    // predictions follow the mapping
    for (std::size_t i = 0; i < b.samples.size(); ++i) {
        if (i == b.labeled_sample) continue;
        ASSERT_GE(r.assignment[i], 0);
        EXPECT_EQ(r.predicted_floor[i],
                  r.cluster_to_floor[static_cast<std::size_t>(r.assignment[i])]);
    }
    // the labeled sample keeps its known label
    EXPECT_EQ(r.predicted_floor[b.labeled_sample], b.labeled_floor);
}

TEST(fis_one, labeled_cluster_is_anchored_to_floor_zero) {
    const auto b = make_building(4, 73);
    const auto r = core::fis_one(fast_config()).run(b);
    const int labeled_cluster = r.assignment[b.labeled_sample];
    ASSERT_GE(labeled_cluster, 0);
    EXPECT_EQ(r.cluster_to_floor[static_cast<std::size_t>(labeled_cluster)], 0);
}

TEST(fis_one, deterministic_given_seed) {
    const auto b = make_building(3, 74);
    const auto r1 = core::fis_one(fast_config(11)).run(b);
    const auto r2 = core::fis_one(fast_config(11)).run(b);
    EXPECT_EQ(r1.assignment, r2.assignment);
    EXPECT_EQ(r1.cluster_to_floor, r2.cluster_to_floor);
    EXPECT_DOUBLE_EQ(r1.ari, r2.ari);
}

TEST(fis_one, kmeans_variant_runs) {
    const auto b = make_building(3, 75);
    auto cfg = fast_config();
    cfg.clustering = core::clustering_algorithm::kmeans;
    const auto r = core::fis_one(cfg).run(b);
    EXPECT_GT(r.ari, 0.4);
}

TEST(fis_one, two_opt_variant_matches_exact_on_small_buildings) {
    const auto b = make_building(4, 76);
    auto exact_cfg = fast_config(13);
    auto approx_cfg = fast_config(13);
    approx_cfg.solver = indexing::tsp_solver::two_opt;
    const auto r_exact = core::fis_one(exact_cfg).run(b);
    const auto r_approx = core::fis_one(approx_cfg).run(b);
    // Same clustering; indexing may differ slightly but edit distance stays close.
    EXPECT_EQ(r_exact.assignment, r_approx.assignment);
    EXPECT_NEAR(r_exact.edit_distance, r_approx.edit_distance, 0.15);
}

TEST(fis_one, plain_jaccard_variant_runs) {
    const auto b = make_building(3, 77);
    auto cfg = fast_config();
    cfg.similarity = indexing::similarity_kind::jaccard;
    const auto r = core::fis_one(cfg).run(b);
    EXPECT_GE(r.edit_distance, 0.0);
    EXPECT_LE(r.edit_distance, 1.0);
}

TEST(fis_one, arbitrary_floor_label_protocol) {
    auto b = make_building(4, 78);
    util::rng gen(5);
    sim::relabel_floor(b, 2, gen);  // label on floor 2 of 4: unambiguous

    auto cfg = fast_config();
    cfg.label = core::label_mode::arbitrary_floor;
    const auto r = core::fis_one(cfg).run(b);

    EXPECT_FALSE(r.ambiguous);
    EXPECT_EQ(r.assignment[b.labeled_sample], -1);  // excluded from clustering
    EXPECT_EQ(r.predicted_floor[b.labeled_sample], 2);
    EXPECT_GT(r.ari, 0.5);
    EXPECT_GT(r.edit_distance, 0.6);
}

TEST(fis_one, middle_floor_label_flags_ambiguity) {
    auto b = make_building(3, 79);
    util::rng gen(6);
    sim::relabel_floor(b, 1, gen);  // middle of 3 floors: §VI Case 1

    auto cfg = fast_config();
    cfg.label = core::label_mode::arbitrary_floor;
    const auto r = core::fis_one(cfg).run(b);
    EXPECT_TRUE(r.ambiguous);
}

TEST(fis_one, rejects_invalid_building) {
    data::building bad;
    bad.num_floors = 3;
    EXPECT_THROW((void)core::fis_one(fast_config()).run(bad), std::invalid_argument);
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 0;
    EXPECT_THROW(core::fis_one{cfg}, std::invalid_argument);
}

TEST(evaluate_with_indexing, scores_ground_truth_assignment_perfectly) {
    const auto b = make_building(4, 80);
    std::vector<int> perfect;
    perfect.reserve(b.samples.size());
    for (const auto& s : b.samples) perfect.push_back(s.true_floor);
    const auto s = core::evaluate_with_indexing(
        b, perfect, indexing::similarity_kind::adapted_jaccard, indexing::tsp_solver::exact, 1);
    EXPECT_DOUBLE_EQ(s.ari, 1.0);
    EXPECT_DOUBLE_EQ(s.nmi, 1.0);
    EXPECT_DOUBLE_EQ(s.edit_distance, 1.0);
}

TEST(evaluate_with_indexing, validates_input) {
    const auto b = make_building(3, 81);
    EXPECT_THROW((void)core::evaluate_with_indexing(b, {0, 1},
                                                    indexing::similarity_kind::adapted_jaccard,
                                                    indexing::tsp_solver::exact, 1),
                 std::invalid_argument);
}

// Property sweep: the pipeline holds up across floor counts (Fig. 12 at
// unit-test scale).
class fis_one_floor_sweep : public ::testing::TestWithParam<int> {};

TEST_P(fis_one_floor_sweep, reasonable_quality_across_heights) {
    const auto floors = static_cast<std::size_t>(GetParam());
    const auto b = make_building(floors, 90 + floors, 40);
    const auto r = core::fis_one(fast_config(static_cast<std::uint64_t>(floors))).run(b);
    EXPECT_GT(r.ari, 0.35) << "floors=" << floors;
    EXPECT_GT(r.edit_distance, 0.5) << "floors=" << floors;
}

INSTANTIATE_TEST_SUITE_P(building_heights, fis_one_floor_sweep, ::testing::Values(3, 4, 5, 6, 7));

}  // namespace
