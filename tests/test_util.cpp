// Tests for src/util: RNG, alias sampler, streaming stats, CSV, CLI.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "util/alias_sampler.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/percentile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace fisone::util;

// ---------- rng ----------

TEST(rng, deterministic_for_same_seed) {
    rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_diverge) {
    rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        if (a() != b()) ++differing;
    EXPECT_GT(differing, 30);
}

TEST(rng, uniform_in_unit_interval) {
    rng gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = gen.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(rng, uniform_range_respected) {
    rng gen(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = gen.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(rng, uniform_index_covers_all_values) {
    rng gen(3);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 6000; ++i) ++counts[gen.uniform_index(6)];
    ASSERT_EQ(counts.size(), 6u);
    for (const auto& [value, count] : counts) {
        EXPECT_LT(value, 6u);
        EXPECT_GT(count, 800);  // roughly uniform
        EXPECT_LT(count, 1200);
    }
}

TEST(rng, uniform_index_zero_throws) {
    rng gen(3);
    EXPECT_THROW((void)gen.uniform_index(0), std::invalid_argument);
}

TEST(rng, normal_has_right_moments) {
    rng gen(11);
    running_stats s;
    for (int i = 0; i < 50000; ++i) s.add(gen.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.03);
    EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(rng, normal_with_params) {
    rng gen(11);
    running_stats s;
    for (int i = 0; i < 50000; ++i) s.add(gen.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(rng, bernoulli_probability) {
    rng gen(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (gen.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(rng, split_streams_are_independent) {
    rng parent(5);
    rng child = parent.split();
    // child's next outputs should not replicate parent's
    int same = 0;
    for (int i = 0; i < 16; ++i)
        if (parent() == child()) ++same;
    EXPECT_LT(same, 2);
}

TEST(rng, shuffle_is_permutation) {
    rng gen(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    gen.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

// ---------- alias sampler ----------

TEST(alias_sampler, matches_distribution) {
    rng gen(21);
    const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
    alias_sampler sampler(weights);
    std::vector<int> counts(4, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) ++counts[sampler.sample(gen)];
    for (std::size_t j = 0; j < 4; ++j) {
        const double expected = weights[j] / 10.0;
        EXPECT_NEAR(counts[j] / static_cast<double>(draws), expected, 0.01)
            << "category " << j;
    }
}

TEST(alias_sampler, single_category) {
    rng gen(2);
    alias_sampler sampler(std::vector<double>{5.0});
    for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.sample(gen), 0u);
}

TEST(alias_sampler, zero_weight_never_sampled) {
    rng gen(2);
    alias_sampler sampler(std::vector<double>{1.0, 0.0, 1.0});
    for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.sample(gen), 1u);
}

TEST(alias_sampler, rejects_bad_inputs) {
    EXPECT_THROW(alias_sampler(std::vector<double>{}), std::invalid_argument);
    EXPECT_THROW(alias_sampler(std::vector<double>{1.0, -0.5}), std::invalid_argument);
    EXPECT_THROW(alias_sampler(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(alias_sampler, default_constructed_throws_on_sample) {
    rng gen(2);
    alias_sampler sampler;
    EXPECT_EQ(sampler.size(), 0u);
    EXPECT_THROW((void)sampler.sample(gen), std::logic_error);
}

// ---------- running stats ----------

TEST(running_stats, basic_moments) {
    running_stats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(running_stats, empty_behaviour) {
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_THROW((void)s.min(), std::logic_error);
    EXPECT_THROW((void)s.max(), std::logic_error);
}

TEST(running_stats, merge_equals_combined) {
    running_stats a, b, combined;
    rng gen(1);
    for (int i = 0; i < 500; ++i) {
        const double x = gen.normal(3.0, 2.0);
        (i % 2 == 0 ? a : b).add(x);
        combined.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(running_stats, merge_with_empty) {
    running_stats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
}

TEST(stats_helpers, mean_and_stddev) {
    EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0, 1e-12);
    EXPECT_THROW((void)mean_of({}), std::invalid_argument);
}

TEST(stats_helpers, nearest_rank_percentile) {
    const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};  // unsorted on purpose
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 90.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
    // 20% of 5 observations is exactly the first rank.
    EXPECT_DOUBLE_EQ(percentile(xs, 20.0), 1.0);
    EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
    EXPECT_THROW((void)percentile(xs, -1.0), std::invalid_argument);
    EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
    EXPECT_THROW((void)percentile(xs, std::nan("")), std::invalid_argument);
}

TEST(percentile_accumulator, matches_one_shot_percentile) {
    percentile_accumulator acc;
    const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    for (const double x : xs) acc.add(x);
    EXPECT_EQ(acc.count(), 5u);
    for (const double p : {0.0, 20.0, 50.0, 90.0, 100.0})
        EXPECT_DOUBLE_EQ(acc.percentile(p), percentile(xs, p));
    // Querying never loses observations: add-after-query still works.
    acc.add(0.5);
    EXPECT_DOUBLE_EQ(acc.percentile(0.0), 0.5);
    EXPECT_EQ(acc.count(), 6u);
}

TEST(percentile_accumulator, empty_behaviour) {
    const percentile_accumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_THROW((void)acc.percentile(50.0), std::invalid_argument);
    EXPECT_DOUBLE_EQ(acc.percentile_or_zero(50.0), 0.0);
}

TEST(percentile_accumulator, merge_equals_pooled_in_any_order) {
    // Percentiles cannot be combined from percentiles — the accumulator
    // merges sample sets, so any merge tree must equal the pooled data.
    percentile_accumulator a, b, c, pooled;
    for (const double x : {9.0, 2.0, 7.0}) {
        a.add(x);
        pooled.add(x);
    }
    for (const double x : {1.0, 8.0, 3.0, 5.0}) {
        b.add(x);
        pooled.add(x);
    }
    for (const double x : {4.0, 6.0}) {
        c.add(x);
        pooled.add(x);
    }
    percentile_accumulator ab = a;
    ab.merge(b);
    ab.merge(c);
    percentile_accumulator cb = c;
    cb.merge(b);
    cb.merge(a);
    EXPECT_EQ(ab.count(), pooled.count());
    for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(ab.percentile(p), pooled.percentile(p));
        EXPECT_DOUBLE_EQ(cb.percentile(p), pooled.percentile(p));
    }
}

TEST(percentile_accumulator, merge_with_empty_is_identity) {
    percentile_accumulator acc, empty;
    acc.add(3.0);
    acc.add(1.0);
    acc.merge(empty);
    EXPECT_EQ(acc.count(), 2u);
    EXPECT_DOUBLE_EQ(acc.percentile(100.0), 3.0);
    empty.merge(acc);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.percentile(0.0), 1.0);
}

// ---------- csv ----------

TEST(csv, split_and_trim) {
    const auto fields = split_fields(" a , b ,, c ");
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "b");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "c");
}

TEST(csv, join_roundtrip) {
    const std::vector<std::string> fields{"x", "y", "z"};
    EXPECT_EQ(join_fields(fields), "x,y,z");
    EXPECT_EQ(split_fields(join_fields(fields)), fields);
}

TEST(csv, parse_numbers) {
    EXPECT_DOUBLE_EQ(parse_double("-61.5"), -61.5);
    EXPECT_EQ(parse_int("42"), 42);
    EXPECT_EQ(parse_int("-7"), -7);
    EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
    EXPECT_THROW((void)parse_int("12.5"), std::invalid_argument);
    EXPECT_THROW((void)parse_int(""), std::invalid_argument);
}

TEST(csv, trim_edge_cases) {
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

// ---------- table printer ----------

TEST(table_printer, renders_aligned_rows) {
    table_printer t("caption");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("caption"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(table_printer, mean_std_format) {
    EXPECT_EQ(table_printer::mean_std(0.8564, 0.0861), "0.856(0.086)");
    EXPECT_EQ(table_printer::num(0.25, 2), "0.25");
}

// ---------- cli ----------

TEST(cli, parses_flags_and_values) {
    const char* argv[] = {"prog", "--buildings", "16", "--full", "--rate", "0.5"};
    cli_args args(6, argv);
    EXPECT_TRUE(args.has("buildings"));
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.get_int("buildings", 0), 16);
    EXPECT_EQ(args.get_int("absent", 3), 3);
    EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
    EXPECT_EQ(args.get("absent", "x"), "x");
}

TEST(cli, rejects_positional) {
    const char* argv[] = {"prog", "stray"};
    EXPECT_THROW(cli_args(2, argv), std::invalid_argument);
}

}  // namespace
