// Tests for src/linalg: matrix arithmetic, eigensolvers, classical MDS.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone::linalg;

// ---------- matrix basics ----------

TEST(matrix, construction_and_access) {
    matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
    EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
    EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
}

TEST(matrix, initializer_list) {
    matrix m{{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
    EXPECT_THROW((matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(matrix, arithmetic) {
    const matrix a{{1, 2}, {3, 4}};
    const matrix b{{5, 6}, {7, 8}};
    const matrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
    EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
    const matrix diff = b - a;
    EXPECT_DOUBLE_EQ(diff(0, 1), 4.0);
    const matrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
    EXPECT_EQ(scaled, 2.0 * a);
    matrix c = a;
    EXPECT_THROW(c += matrix(3, 3), std::invalid_argument);
}

TEST(matrix, matmul_identity) {
    const matrix a{{1, 2, 3}, {4, 5, 6}};
    const matrix i3 = identity(3);
    EXPECT_EQ(matmul(a, i3), a);
    const matrix i2 = identity(2);
    EXPECT_EQ(matmul(i2, a), a);
}

TEST(matrix, matmul_known_product) {
    const matrix a{{1, 2}, {3, 4}};
    const matrix b{{5, 6}, {7, 8}};
    const matrix c = matmul(a, b);
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
    EXPECT_THROW((void)matmul(a, matrix(3, 2)), std::invalid_argument);
}

TEST(matrix, matmul_transposed_variants) {
    const matrix a{{1, 2, 3}, {4, 5, 6}};
    const matrix b{{7, 8, 9}, {10, 11, 12}};
    EXPECT_EQ(matmul_nt(a, b), matmul(a, transpose(b)));
    EXPECT_EQ(matmul_tn(a, b), matmul(transpose(a), b));
}

TEST(matrix, transpose_involution) {
    const matrix a{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(matrix, hadamard_product) {
    const matrix a{{1, 2}, {3, 4}};
    const matrix b{{2, 2}, {3, 3}};
    const matrix h = hadamard(a, b);
    EXPECT_DOUBLE_EQ(h(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(h(1, 0), 9.0);
}

TEST(matrix, reshape_preserves_data) {
    matrix a{{1, 2, 3}, {4, 5, 6}};
    a.reshape(3, 2);
    EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
    EXPECT_THROW(a.reshape(4, 2), std::invalid_argument);
}

// ---------- vector helpers ----------

TEST(vectors, distances_and_dot) {
    const std::vector<double> a{0.0, 3.0};
    const std::vector<double> b{4.0, 0.0};
    EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
    EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
    EXPECT_DOUBLE_EQ(norm2(a), 3.0);
}

TEST(vectors, cosine_similarity_cases) {
    const std::vector<double> a{1.0, 0.0};
    const std::vector<double> b{0.0, 2.0};
    const std::vector<double> c{3.0, 0.0};
    const std::vector<double> zero{0.0, 0.0};
    EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
    EXPECT_DOUBLE_EQ(cosine_similarity(a, c), 1.0);
    EXPECT_DOUBLE_EQ(cosine_similarity(a, zero), 0.0);
}

// ---------- jacobi eigen ----------

TEST(jacobi, diagonal_matrix) {
    const matrix d{{3, 0}, {0, 1}};
    const eigen_result r = jacobi_eigen(d);
    EXPECT_NEAR(r.values[0], 3.0, 1e-12);
    EXPECT_NEAR(r.values[1], 1.0, 1e-12);
}

TEST(jacobi, known_symmetric_2x2) {
    // eigenvalues of [[2,1],[1,2]] are 3 and 1
    const matrix a{{2, 1}, {1, 2}};
    const eigen_result r = jacobi_eigen(a);
    EXPECT_NEAR(r.values[0], 3.0, 1e-10);
    EXPECT_NEAR(r.values[1], 1.0, 1e-10);
}

TEST(jacobi, reconstruction) {
    const matrix a{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
    const eigen_result r = jacobi_eigen(a);
    // A = V diag(λ) Vᵀ
    matrix lambda(3, 3, 0.0);
    for (std::size_t i = 0; i < 3; ++i) lambda(i, i) = r.values[i];
    const matrix rec = matmul(matmul(r.vectors, lambda), transpose(r.vectors));
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
}

TEST(jacobi, eigenvectors_orthonormal) {
    const matrix a{{5, 2, 1}, {2, 6, 2}, {1, 2, 7}};
    const eigen_result r = jacobi_eigen(a);
    const matrix vtv = matmul(transpose(r.vectors), r.vectors);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(jacobi, rejects_nonsymmetric) {
    const matrix a{{1, 2}, {3, 4}};
    EXPECT_THROW((void)jacobi_eigen(a), std::invalid_argument);
    EXPECT_THROW((void)jacobi_eigen(matrix(2, 3)), std::invalid_argument);
}

// ---------- subspace eigen ----------

TEST(subspace, matches_jacobi_on_random_symmetric) {
    fisone::util::rng gen(77);
    const std::size_t n = 30;
    matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            const double v = gen.normal();
            a(i, j) = v;
            a(j, i) = v;
        }
    const eigen_result full = jacobi_eigen(a);
    const eigen_result top = subspace_eigen(a, 5, 200);
    for (std::size_t j = 0; j < 5; ++j)
        EXPECT_NEAR(top.values[j], full.values[j], 1e-6) << "eigenvalue " << j;
}

TEST(subspace, rejects_bad_k) {
    const matrix a{{2, 1}, {1, 2}};
    EXPECT_THROW((void)subspace_eigen(a, 0), std::invalid_argument);
    EXPECT_THROW((void)subspace_eigen(a, 3), std::invalid_argument);
}

// ---------- double centering / MDS ----------

TEST(mds, double_center_row_col_sums_vanish) {
    const matrix d{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}};
    const matrix b = double_center(d);
    for (std::size_t i = 0; i < 3; ++i) {
        double row = 0.0, col = 0.0;
        for (std::size_t j = 0; j < 3; ++j) {
            row += b(i, j);
            col += b(j, i);
        }
        EXPECT_NEAR(row, 0.0, 1e-12);
        EXPECT_NEAR(col, 0.0, 1e-12);
    }
}

TEST(mds, recovers_planar_configuration) {
    // Four points in the plane; classical MDS must reproduce their
    // pairwise distances in a 2-D embedding.
    const double pts[4][2] = {{0, 0}, {1, 0}, {1, 1}, {0, 2}};
    matrix d(4, 4, 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            const double dx = pts[i][0] - pts[j][0];
            const double dy = pts[i][1] - pts[j][1];
            d(i, j) = std::sqrt(dx * dx + dy * dy);
        }
    const matrix coords = classical_mds(d, 2);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j) {
            const double dij = euclidean_distance(coords.row(i), coords.row(j));
            EXPECT_NEAR(dij, d(i, j), 1e-8) << i << "," << j;
        }
}

TEST(mds, extra_dimensions_are_zero) {
    // Two points: only one meaningful axis; higher axes must vanish.
    matrix d(2, 2, 0.0);
    d(0, 1) = d(1, 0) = 3.0;
    const matrix coords = classical_mds(d, 2);
    EXPECT_NEAR(euclidean_distance(coords.row(0), coords.row(1)), 3.0, 1e-9);
    EXPECT_NEAR(coords(0, 1), 0.0, 1e-9);
    EXPECT_NEAR(coords(1, 1), 0.0, 1e-9);
}

TEST(mds, rejects_zero_dim) {
    EXPECT_THROW((void)classical_mds(matrix(2, 2), 0), std::invalid_argument);
}

}  // namespace
