// Tests for src/indexing: cluster profiles, plain/adapted Jaccard, and the
// TSP-based cluster indexer (both label protocols).

#include <gtest/gtest.h>

#include <cmath>

#include "indexing/cluster_indexer.hpp"
#include "indexing/similarity.hpp"

namespace {

using namespace fisone;
using indexing::cluster_profile;

/// Building with 3 MACs and 4 samples in 2 clusters:
/// cluster 0 = samples {0,1} seeing macs {0,1}; cluster 1 = {2,3} seeing {1,2}.
data::building profile_building() {
    data::building b;
    b.name = "profiles";
    b.num_floors = 2;
    b.num_macs = 3;
    b.samples.push_back({{{0, -40.0}, {1, -60.0}}, 0, 0});
    b.samples.push_back({{{0, -42.0}, {1, -61.0}}, 0, 0});
    b.samples.push_back({{{1, -70.0}, {2, -50.0}}, 1, 0});
    b.samples.push_back({{{2, -52.0}}, 1, 0});
    b.labeled_sample = 0;
    b.labeled_floor = 0;
    return b;
}

TEST(profiles, frequencies_count_scans) {
    const auto b = profile_building();
    const auto profiles = indexing::build_profiles(b, {0, 0, 1, 1}, 2);
    ASSERT_EQ(profiles.size(), 2u);
    EXPECT_DOUBLE_EQ(profiles[0].freq[0], 2.0);
    EXPECT_DOUBLE_EQ(profiles[0].freq[1], 2.0);
    EXPECT_DOUBLE_EQ(profiles[0].freq[2], 0.0);
    EXPECT_DOUBLE_EQ(profiles[1].freq[1], 1.0);
    EXPECT_DOUBLE_EQ(profiles[1].freq[2], 2.0);
    EXPECT_EQ(profiles[0].num_samples, 2u);
    EXPECT_EQ(profiles[0].support(), 2u);
}

TEST(profiles, duplicate_macs_in_one_scan_count_once) {
    data::building b = profile_building();
    b.samples[0].observations.push_back({0, -45.0});  // mac 0 twice in scan 0
    const auto profiles = indexing::build_profiles(b, {0, 0, 1, 1}, 2);
    EXPECT_DOUBLE_EQ(profiles[0].freq[0], 2.0);  // still two scans
}

TEST(profiles, excluded_samples_skipped) {
    const auto b = profile_building();
    const auto profiles = indexing::build_profiles(b, {-1, 0, 1, 1}, 2);
    EXPECT_EQ(profiles[0].num_samples, 1u);
    EXPECT_DOUBLE_EQ(profiles[0].freq[0], 1.0);
}

TEST(profiles, validation) {
    const auto b = profile_building();
    EXPECT_THROW((void)indexing::build_profiles(b, {0, 0, 1}, 2), std::invalid_argument);
    EXPECT_THROW((void)indexing::build_profiles(b, {0, 0, 1, 5}, 2), std::invalid_argument);
    EXPECT_THROW((void)indexing::build_profiles(b, {0, 0, 1, 1}, 0), std::invalid_argument);
}

// ---------- plain Jaccard ----------

TEST(jaccard, hand_computed_value) {
    const auto b = profile_building();
    const auto p = indexing::build_profiles(b, {0, 0, 1, 1}, 2);
    // A0 = {0,1}, A1 = {1,2}: |∩| = 1, |∪| = 3
    EXPECT_NEAR(indexing::plain_jaccard(p[0], p[1]), 1.0 / 3.0, 1e-12);
}

TEST(jaccard, identical_and_disjoint) {
    cluster_profile a{{2.0, 3.0, 0.0}, 3};
    cluster_profile same{{5.0, 1.0, 0.0}, 5};   // same support {0,1}
    cluster_profile disjoint{{0.0, 0.0, 4.0}, 4};
    EXPECT_DOUBLE_EQ(indexing::plain_jaccard(a, same), 1.0);
    EXPECT_DOUBLE_EQ(indexing::plain_jaccard(a, disjoint), 0.0);
}

// ---------- adapted Jaccard ----------

TEST(adapted_jaccard, hand_computed_value) {
    // Profiles over m-set {0,1,2}: f_i = (2,2,0), f_j = (0,1,2).
    // f_share = 2·0 + 2·1 + 0·2 = 2.
    // means over m = 3: f̄_i = 4/3, f̄_j = 1.
    // f_diff: k=0: f_jk=0 → f_ik·f̄_j = 2·1 = 2 ... wait k=0: f_i=2, f_j=0 →
    //   1{f_jk=0}·f_ik·f̄_j = 2·1 = 2;
    // k=2: f_i=0 → 1{f_ik=0}·f_jk·f̄_i = 2·(4/3) = 8/3.
    // f_diff = 2 + 8/3 = 14/3; J^n = 2/(2 + 14/3) = 6/20 = 0.3.
    const auto b = profile_building();
    const auto p = indexing::build_profiles(b, {0, 0, 1, 1}, 2);
    EXPECT_NEAR(indexing::adapted_jaccard(p[0], p[1]), 0.3, 1e-12);
}

TEST(adapted_jaccard, bounded_and_symmetric) {
    cluster_profile a{{5.0, 2.0, 0.0, 1.0}, 6};
    cluster_profile b{{1.0, 0.0, 3.0, 2.0}, 4};
    const double ab = indexing::adapted_jaccard(a, b);
    EXPECT_DOUBLE_EQ(ab, indexing::adapted_jaccard(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
}

TEST(adapted_jaccard, identical_profiles_score_one) {
    cluster_profile a{{3.0, 4.0, 0.0}, 5};
    EXPECT_DOUBLE_EQ(indexing::adapted_jaccard(a, a), 1.0);  // no unshared MACs
}

TEST(adapted_jaccard, disjoint_profiles_score_zero) {
    cluster_profile a{{3.0, 0.0}, 3};
    cluster_profile b{{0.0, 2.0}, 2};
    EXPECT_DOUBLE_EQ(indexing::adapted_jaccard(a, b), 0.0);
}

TEST(adapted_jaccard, rewards_coverage_over_presence) {
    // Both pairs share MAC 0; in the "wide" pair the shared MAC covers many
    // scans, in the "narrow" pair only one scan each. Plain Jaccard cannot
    // tell them apart; the adapted coefficient must rank wide > narrow
    // (the paper's motivating example for eq. 3).
    cluster_profile wide_a{{50.0, 10.0, 0.0}, 60};
    cluster_profile wide_b{{50.0, 0.0, 10.0}, 60};
    cluster_profile narrow_a{{1.0, 10.0, 0.0}, 11};
    cluster_profile narrow_b{{1.0, 0.0, 10.0}, 11};
    EXPECT_DOUBLE_EQ(indexing::plain_jaccard(wide_a, wide_b),
                     indexing::plain_jaccard(narrow_a, narrow_b));
    EXPECT_GT(indexing::adapted_jaccard(wide_a, wide_b),
              indexing::adapted_jaccard(narrow_a, narrow_b));
}

TEST(similarity_matrix, symmetric_unit_diagonal) {
    const auto b = profile_building();
    const auto p = indexing::build_profiles(b, {0, 0, 1, 1}, 2);
    for (const auto kind :
         {indexing::similarity_kind::adapted_jaccard, indexing::similarity_kind::jaccard}) {
        const auto sim = indexing::similarity_matrix(p, kind);
        EXPECT_DOUBLE_EQ(sim(0, 0), 1.0);
        EXPECT_DOUBLE_EQ(sim(1, 1), 1.0);
        EXPECT_DOUBLE_EQ(sim(0, 1), sim(1, 0));
    }
}

// ---------- cluster indexer ----------

/// Chain-structured similarity: floors adjacent in ground truth are the
/// most similar, decaying with gap — the structure spillover produces.
linalg::matrix chain_similarity(std::size_t n, double decay = 0.3) {
    linalg::matrix sim(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const auto gap = static_cast<double>(i > j ? i - j : j - i);
            sim(i, j) = gap == 0.0 ? 1.0 : std::max(0.0, 1.0 - decay * gap);
        }
    return sim;
}

TEST(indexer, bottom_label_recovers_chain_order) {
    util::rng gen(1);
    const auto sim = chain_similarity(6);
    for (const auto solver : {indexing::tsp_solver::exact, indexing::tsp_solver::two_opt}) {
        const auto r = indexing::index_from_bottom(sim, 0, solver, gen);
        for (std::size_t c = 0; c < 6; ++c)
            EXPECT_EQ(r.cluster_to_floor[c], static_cast<int>(c));
        EXPECT_FALSE(r.ambiguous);
    }
}

TEST(indexer, order_and_mapping_are_inverse) {
    util::rng gen(2);
    const auto sim = chain_similarity(5);
    const auto r = indexing::index_from_bottom(sim, 2, indexing::tsp_solver::exact, gen);
    for (std::size_t p = 0; p < r.order.size(); ++p)
        EXPECT_EQ(r.cluster_to_floor[r.order[p]], static_cast<int>(p));
    EXPECT_EQ(r.order.front(), 2u);  // anchored at the labeled cluster
}

TEST(indexer, arbitrary_label_picks_correct_orientation) {
    util::rng gen(3);
    const std::size_t n = 6;
    const auto sim = chain_similarity(n);
    // Label on floor 1. Free-start path is the chain (possibly reversed).
    // The labeled sample is closest to cluster 1 (the true floor-1 cluster).
    std::vector<double> dist(n, 10.0);
    dist[1] = 0.5;
    const auto r = indexing::index_from_arbitrary(sim, 1, dist,
                                                  indexing::tsp_solver::exact, gen);
    EXPECT_FALSE(r.ambiguous);
    for (std::size_t c = 0; c < n; ++c)
        EXPECT_EQ(r.cluster_to_floor[c], static_cast<int>(c));
}

TEST(indexer, arbitrary_label_reversed_orientation) {
    util::rng gen(4);
    const std::size_t n = 6;
    const auto sim = chain_similarity(n);
    // Label on floor 1, but the labeled sample is closest to cluster 4 —
    // i.e. ground truth is the reversed chain (cluster 4 is floor 1).
    std::vector<double> dist(n, 10.0);
    dist[4] = 0.5;
    const auto r = indexing::index_from_arbitrary(sim, 1, dist,
                                                  indexing::tsp_solver::exact, gen);
    EXPECT_FALSE(r.ambiguous);
    // Reversed chain: cluster 5 → floor 0, cluster 4 → floor 1, ...
    for (std::size_t c = 0; c < n; ++c)
        EXPECT_EQ(r.cluster_to_floor[c], static_cast<int>(n - 1 - c));
}

TEST(indexer, middle_floor_of_odd_building_is_ambiguous) {
    util::rng gen(5);
    const auto sim = chain_similarity(5);
    std::vector<double> dist(5, 1.0);
    const auto r = indexing::index_from_arbitrary(sim, 2, dist,
                                                  indexing::tsp_solver::exact, gen);
    EXPECT_TRUE(r.ambiguous);  // paper §VI Case 1
}

TEST(indexer, weights_matrix_structure) {
    const auto sim = chain_similarity(4);
    const auto w = indexing::similarity_to_weights(sim);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(w(i, i), 0.0);
        for (std::size_t j = 0; j < 4; ++j) {
            if (i != j) {
                EXPECT_DOUBLE_EQ(w(i, j), 1.0 - sim(i, j));
            }
        }
    }
}

TEST(indexer, validation) {
    util::rng gen(6);
    const auto sim = chain_similarity(4);
    EXPECT_THROW((void)indexing::index_from_bottom(sim, 9, indexing::tsp_solver::exact, gen),
                 std::invalid_argument);
    EXPECT_THROW((void)indexing::index_from_arbitrary(sim, 1, {1.0, 2.0},
                                                      indexing::tsp_solver::exact, gen),
                 std::invalid_argument);
    EXPECT_THROW((void)indexing::index_from_arbitrary(sim, 7, std::vector<double>(4, 1.0),
                                                      indexing::tsp_solver::exact, gen),
                 std::invalid_argument);
    EXPECT_THROW((void)indexing::similarity_to_weights(linalg::matrix(2, 3)),
                 std::invalid_argument);
}

TEST(indexer, noisy_chain_still_recovered_exactly) {
    // Perturb the chain similarities mildly; the optimal path must still be
    // the identity ordering for small noise.
    util::rng gen(7);
    auto sim = chain_similarity(7, 0.12);
    for (std::size_t i = 0; i < 7; ++i)
        for (std::size_t j = i + 1; j < 7; ++j) {
            const double noise = gen.uniform(-0.02, 0.02);
            sim(i, j) += noise;
            sim(j, i) += noise;
        }
    const auto r = indexing::index_from_bottom(sim, 0, indexing::tsp_solver::exact, gen);
    for (std::size_t c = 0; c < 7; ++c) EXPECT_EQ(r.cluster_to_floor[c], static_cast<int>(c));
}

}  // namespace
