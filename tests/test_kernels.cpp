// Tests for the linalg kernel layer: cache-blocked products checked
// bit-identical against a naive reference at 1 and 4 threads (including
// odd, non-tile-multiple, 1×N, N×1 and empty shapes), the workspace
// arena, the uninit-alloc matrix path, the parallel policy, and
// allocation-reuse behaviour of the autodiff tape.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autodiff/tape.hpp"
#include "cluster/hierarchical.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/parallel_policy.hpp"
#include "linalg/workspace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;
using linalg::matrix;

matrix random_matrix(std::size_t r, std::size_t c, util::rng& gen) {
    matrix m = matrix::uninit(r, c);
    for (double& x : m.flat()) x = gen.normal();
    return m;
}

bool bits_equal(const matrix& a, const matrix& b) {
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           (a.size() == 0 ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Naive references: per output cell one scalar accumulator over the depth
// index in ascending order — the exact sequence the contract pins down.
matrix naive_matmul(const matrix& a, const matrix& b) {
    matrix out(a.rows(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
            out(i, j) = acc;
        }
    return out;
}

matrix naive_matmul_nt(const matrix& a, const matrix& b) {
    matrix out(a.rows(), b.rows(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.rows(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(j, k);
            out(i, j) = acc;
        }
    return out;
}

matrix naive_matmul_tn(const matrix& a, const matrix& b) {
    matrix out(a.cols(), b.cols(), 0.0);
    for (std::size_t i = 0; i < a.cols(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.rows(); ++k) acc += a(k, i) * b(k, j);
            out(i, j) = acc;
        }
    return out;
}

// ---------- blocked kernels vs naive reference, serial and pooled ----------

struct mkn {
    std::size_t m, k, n;
};

const std::vector<mkn> kShapes{
    {0, 0, 0},   {1, 1, 1},    {1, 7, 1},     {5, 1, 9},    {1, 64, 1},
    {64, 1, 64}, {3, 5, 7},    {17, 33, 9},   {8, 8, 8},    {65, 129, 31},
    {4, 300, 4}, {31, 17, 63}, {160, 90, 110}  // big enough to engage the pool
};

TEST(kernels, matmul_bit_identical_to_naive) {
    util::rng gen(101);
    util::thread_pool pool(4);
    for (const auto& s : kShapes) {
        const matrix a = random_matrix(s.m, s.k, gen);
        const matrix b = random_matrix(s.k, s.n, gen);
        const matrix ref = naive_matmul(a, b);
        EXPECT_TRUE(bits_equal(ref, linalg::matmul(a, b)))
            << s.m << "x" << s.k << "x" << s.n << " serial";
        EXPECT_TRUE(bits_equal(ref, linalg::matmul(a, b, &pool)))
            << s.m << "x" << s.k << "x" << s.n << " pooled";
    }
}

TEST(kernels, matmul_nt_bit_identical_to_naive) {
    util::rng gen(102);
    util::thread_pool pool(4);
    for (const auto& s : kShapes) {
        const matrix a = random_matrix(s.m, s.k, gen);
        const matrix b = random_matrix(s.n, s.k, gen);
        const matrix ref = naive_matmul_nt(a, b);
        EXPECT_TRUE(bits_equal(ref, linalg::matmul_nt(a, b)))
            << s.m << "x" << s.k << "x" << s.n << " serial";
        EXPECT_TRUE(bits_equal(ref, linalg::matmul_nt(a, b, &pool)))
            << s.m << "x" << s.k << "x" << s.n << " pooled";
    }
}

TEST(kernels, matmul_tn_bit_identical_to_naive) {
    util::rng gen(103);
    util::thread_pool pool(4);
    for (const auto& s : kShapes) {
        const matrix a = random_matrix(s.k, s.m, gen);
        const matrix b = random_matrix(s.k, s.n, gen);
        const matrix ref = naive_matmul_tn(a, b);
        EXPECT_TRUE(bits_equal(ref, linalg::matmul_tn(a, b)))
            << s.m << "x" << s.k << "x" << s.n << " serial";
        EXPECT_TRUE(bits_equal(ref, linalg::matmul_tn(a, b, &pool)))
            << s.m << "x" << s.k << "x" << s.n << " pooled";
    }
}

TEST(kernels, blocked_row_ranges_compose) {
    // Computing [0, split) and [split, m) separately must equal the full
    // range — this is what the pool's row partition relies on.
    util::rng gen(104);
    const std::size_t m = 37, k = 53, n = 29;
    const matrix a = random_matrix(m, k, gen);
    const matrix b = random_matrix(k, n, gen);
    matrix full = matrix::uninit(m, n);
    linalg::kernels::matmul_blocked(a.data(), b.data(), full.data(), m, k, n, 0, m);
    for (const std::size_t split : {std::size_t{1}, std::size_t{13}, std::size_t{36}}) {
        matrix parts = matrix::uninit(m, n);
        linalg::kernels::matmul_blocked(a.data(), b.data(), parts.data(), m, k, n, 0, split);
        linalg::kernels::matmul_blocked(a.data(), b.data(), parts.data(), m, k, n, split, m);
        EXPECT_TRUE(bits_equal(full, parts)) << "split " << split;
    }
}

TEST(kernels, scalar_reference_matches_naive) {
    // The bench compares blocked against the scalar kernels; anchor those
    // to the naive loops too so all three definitions agree.
    util::rng gen(105);
    const std::size_t m = 19, k = 23, n = 17;
    const matrix a = random_matrix(m, k, gen);
    const matrix b = random_matrix(k, n, gen);
    matrix c = matrix::uninit(m, n);
    linalg::kernels::matmul_scalar(a.data(), b.data(), c.data(), m, k, n, 0, m);
    EXPECT_TRUE(bits_equal(naive_matmul(a, b), c));

    const matrix bt = random_matrix(n, k, gen);
    linalg::kernels::matmul_nt_scalar(a.data(), bt.data(), c.data(), m, k, n, 0, m);
    EXPECT_TRUE(bits_equal(naive_matmul_nt(a, bt), c));

    const matrix at = random_matrix(k, m, gen);
    const matrix b2 = random_matrix(k, n, gen);
    linalg::kernels::matmul_tn_scalar(at.data(), b2.data(), c.data(), m, k, n, 0, m);
    EXPECT_TRUE(bits_equal(naive_matmul_tn(at, b2), c));
}

TEST(kernels, into_variants_reuse_capacity) {
    util::rng gen(106);
    const matrix a = random_matrix(12, 9, gen);
    const matrix b = random_matrix(9, 14, gen);
    matrix out = matrix::uninit(40, 40);  // larger than needed
    const double* storage = out.data();
    linalg::matmul_into(out, a, b);
    EXPECT_EQ(out.data(), storage);  // no reallocation
    EXPECT_EQ(out.rows(), 12u);
    EXPECT_EQ(out.cols(), 14u);
    EXPECT_TRUE(bits_equal(naive_matmul(a, b), out));
}

TEST(kernels, vector_primitives) {
    const std::vector<double> x{1.0, -2.0, 3.0};
    std::vector<double> y{0.5, 0.25, -1.0};
    linalg::kernels::axpy(3, 2.0, x.data(), y.data());
    EXPECT_DOUBLE_EQ(y[0], 2.5);
    EXPECT_DOUBLE_EQ(y[1], -3.75);
    EXPECT_DOUBLE_EQ(y[2], 5.0);
    EXPECT_DOUBLE_EQ(linalg::kernels::dot(3, x.data(), x.data()), 14.0);
    linalg::kernels::scale(3, -1.0, y.data());
    EXPECT_DOUBLE_EQ(y[2], -5.0);
}

// ---------- aligned + uninit storage ----------

TEST(matrix_storage, is_cache_line_aligned) {
    for (std::size_t n : {1u, 3u, 17u, 64u}) {
        const matrix m(n, n, 0.0);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % linalg::kernels::kAlignment, 0u);
    }
}

TEST(matrix_storage, uninit_has_shape_and_writable_cells) {
    matrix m = matrix::uninit(5, 7);
    EXPECT_EQ(m.rows(), 5u);
    EXPECT_EQ(m.cols(), 7u);
    for (double& x : m.flat()) x = 1.0;  // fully define before reading
    EXPECT_DOUBLE_EQ(m(4, 6), 1.0);
    matrix e = matrix::uninit(0, 9);
    EXPECT_TRUE(e.empty());
}

TEST(matrix_storage, fill_constructor_still_initialises) {
    const matrix m(3, 4, 2.5);
    for (const double x : m.flat()) EXPECT_DOUBLE_EQ(x, 2.5);
    const matrix z(3, 4);
    for (const double x : z.flat()) EXPECT_DOUBLE_EQ(x, 0.0);
}

// ---------- workspace ----------

TEST(workspace, recycles_storage) {
    linalg::workspace ws;
    matrix a = ws.take(8, 8);
    for (double& x : a.flat()) x = 3.0;
    const double* storage = a.data();
    ws.recycle(std::move(a));
    EXPECT_EQ(ws.pooled(), 1u);
    matrix b = ws.take(4, 16);  // same element count, new shape
    EXPECT_EQ(b.data(), storage);
    EXPECT_EQ(ws.pooled(), 0u);
}

TEST(workspace, take_zero_clears_dirty_buffer) {
    linalg::workspace ws;
    matrix a = ws.take(6, 6);
    for (double& x : a.flat()) x = 42.0;
    ws.recycle(std::move(a));
    const matrix z = ws.take_zero(6, 6);
    for (const double x : z.flat()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(workspace, best_fit_prefers_smallest_sufficient) {
    linalg::workspace ws;
    matrix small = ws.take(2, 2);
    matrix big = ws.take(32, 32);
    const double* small_storage = small.data();
    const double* big_storage = big.data();
    ws.recycle(std::move(big));
    ws.recycle(std::move(small));
    const matrix got = ws.take(2, 2);
    EXPECT_EQ(got.data(), small_storage);  // not the 32×32 buffer
    const matrix got_big = ws.take(20, 20);
    EXPECT_EQ(got_big.data(), big_storage);
}

TEST(workspace, oversize_request_replaces_largest_without_copy) {
    linalg::workspace ws;
    matrix small = ws.take(2, 2);
    ws.recycle(std::move(small));
    ASSERT_EQ(ws.pooled(), 1u);
    matrix big = ws.take(50, 50);  // nothing fits: fresh alloc, pool entry dropped
    EXPECT_EQ(ws.pooled(), 0u);
    EXPECT_EQ(big.rows(), 50u);
    EXPECT_EQ(big.cols(), 50u);
}

TEST(matrix_storage, moved_from_matrix_is_clean_empty) {
    matrix a(3, 4, 1.0);
    matrix b = std::move(a);
    EXPECT_EQ(a.rows(), 0u);
    EXPECT_EQ(a.cols(), 0u);
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(b.rows(), 3u);
    matrix c;
    c = std::move(b);
    EXPECT_EQ(b.rows(), 0u);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(c.cols(), 4u);
}

TEST(workspace, take_copy_matches_source) {
    linalg::workspace ws;
    util::rng gen(107);
    const matrix src = random_matrix(9, 5, gen);
    const matrix cp = ws.take_copy(src);
    EXPECT_TRUE(bits_equal(src, cp));
}

// ---------- parallel policy ----------

TEST(parallel_policy, thresholds) {
    using linalg::parallel_policy;
    util::thread_pool pool(2);
    EXPECT_EQ(parallel_policy::effective(&pool, parallel_policy::min_parallel_flops - 1),
              nullptr);
    EXPECT_EQ(parallel_policy::effective(&pool, parallel_policy::min_parallel_flops), &pool);
    EXPECT_GE(parallel_policy::row_grain(0), 1u);
    EXPECT_GE(parallel_policy::row_grain(1000), 31u);
    EXPECT_GE(parallel_policy::span_grain(100), parallel_policy::min_span);
}

// ---------- tape reuse ----------

// One small forward+backward; returns (loss value, grad of w).
std::pair<matrix, matrix> run_step(autodiff::tape& t, const matrix& x, const matrix& w) {
    const autodiff::var xv = t.constant(x);
    const autodiff::var wv = t.parameter(w);
    const autodiff::var h = t.tanh_act(t.matmul(xv, wv));
    const autodiff::var loss = t.mean_all(t.hadamard(h, h));
    t.backward(loss);
    return {t.value(loss), t.grad(wv)};
}

TEST(tape_reuse, reset_reuses_storage_and_keeps_bits) {
    util::rng gen(108);
    const matrix x = random_matrix(20, 6, gen);
    const matrix w = random_matrix(6, 4, gen);

    autodiff::tape fresh;
    const auto [loss_a, grad_a] = run_step(fresh, x, w);

    autodiff::tape reused;
    (void)run_step(reused, x, w);
    reused.reset();
    const auto [loss_b, grad_b] = run_step(reused, x, w);

    EXPECT_TRUE(bits_equal(loss_a, loss_b));
    EXPECT_TRUE(bits_equal(grad_a, grad_b));
}

TEST(tape_reuse, many_resets_stay_stable) {
    util::rng gen(109);
    const matrix x = random_matrix(8, 3, gen);
    const matrix w = random_matrix(3, 5, gen);
    autodiff::tape t;
    const auto [loss0, grad0] = run_step(t, x, w);
    for (int i = 0; i < 10; ++i) {
        t.reset();
        const auto [loss, grad] = run_step(t, x, w);
        EXPECT_TRUE(bits_equal(loss0, loss)) << "iteration " << i;
        EXPECT_TRUE(bits_equal(grad0, grad)) << "iteration " << i;
    }
}

// ---------- UPGMA pooled bit-identity (distance init + merge updates) ----------

TEST(upgma, pooled_linkage_bit_identical_to_serial) {
    util::rng gen(110);
    const matrix pts = random_matrix(400, 8, gen);
    const auto serial = cluster::upgma_linkage(pts, nullptr);
    util::thread_pool pool(4);
    const auto pooled = cluster::upgma_linkage(pts, &pool);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].a, pooled[i].a) << i;
        EXPECT_EQ(serial[i].b, pooled[i].b) << i;
        EXPECT_EQ(serial[i].height, pooled[i].height) << i;
    }
}

}  // namespace
