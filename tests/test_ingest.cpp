// Tests for src/ingest + the federation watch registry: append-only delta
// durability (including interrupted appends at both checkpoints), dirty
// detection and re-run submission through ingest_manager, and watch
// subscription delivery/pruning. Runs in the TSan CI tier — the manager
// test drives appends from multiple threads against a live responder.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "data/corpus_store.hpp"
#include "federation/watch_registry.hpp"
#include "ingest/append.hpp"
#include "ingest/ingest_manager.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone;

struct scoped_dir {
    std::string dir;
    explicit scoped_dir(const std::string& stem) {
        dir = "/tmp/" + stem + "-" + std::to_string(::getpid());
        std::filesystem::remove_all(dir);
    }
    ~scoped_dir() {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

data::building named_building(const std::string& name, std::uint64_t seed) {
    sim::building_spec spec;
    spec.name = name;
    spec.num_floors = 2;
    spec.samples_per_floor = 6;
    spec.aps_per_floor = 4;
    spec.seed = seed;
    return sim::generate_building(spec).building;
}

std::string make_store(const scoped_dir& s, std::vector<std::string> names) {
    data::corpus c;
    c.name = "city";
    for (std::size_t i = 0; i < names.size(); ++i)
        c.buildings.push_back(named_building(names[i], 100 + i));
    data::write_corpus_store(c, s.dir, 2);
    return s.dir;
}

// ---------- ingest::append_scans ----------

TEST(append_scans, versions_advance_and_touched_names_dedupe) {
    scoped_dir s("fisone-append-basic");
    make_store(s, {"a", "b"});

    const std::vector<data::building> batch1 = {named_building("b", 500),
                                                named_building("d", 501),
                                                named_building("b", 502)};
    const ingest::append_outcome o1 = ingest::append_scans(s.dir, batch1);
    EXPECT_EQ(o1.version, 1u);
    EXPECT_EQ(o1.accepted, 3u);
    ASSERT_EQ(o1.touched.size(), 2u);  // deduped, first-appearance order
    EXPECT_EQ(o1.touched[0], "b");
    EXPECT_EQ(o1.touched[1], "d");

    const ingest::append_outcome o2 =
        ingest::append_scans(s.dir, {named_building("a", 503)});
    EXPECT_EQ(o2.version, 2u);

    const data::corpus_store store = data::corpus_store::open(s.dir);
    EXPECT_EQ(store.manifest().version, 2u);
    ASSERT_EQ(store.manifest().deltas.size(), 2u);
    EXPECT_EQ(store.manifest().deltas[0].num_records, 3u);
    // Effective corpus: a, b (merged) + new d at the tail.
    EXPECT_EQ(store.load_all_effective().buildings.size(), 3u);
}

TEST(append_scans, rejects_empty_batches_and_unnamed_records) {
    scoped_dir s("fisone-append-reject");
    make_store(s, {"a"});
    EXPECT_THROW((void)ingest::append_scans(s.dir, {}), std::invalid_argument);
    data::building nameless = named_building("a", 1);
    nameless.name.clear();
    EXPECT_THROW((void)ingest::append_scans(s.dir, {nameless}), std::invalid_argument);
    // Nothing landed: the store is untouched.
    EXPECT_EQ(data::corpus_store::open(s.dir).manifest().version, 0u);
}

TEST(append_scans, interrupted_after_delta_before_manifest_tmp_recovers) {
    scoped_dir s("fisone-append-crash1");
    make_store(s, {"a"});

    ingest::append_hooks hooks;
    hooks.checkpoint = [](int step) {
        if (step == 1) throw std::runtime_error("injected crash at checkpoint 1");
    };
    EXPECT_THROW((void)ingest::append_scans(s.dir, {named_building("x", 9)}, hooks),
                 std::runtime_error);

    // The delta shard is on disk but invisible: the manifest never moved.
    EXPECT_TRUE(std::filesystem::exists(s.dir + "/delta-0001.csv"));
    EXPECT_EQ(data::corpus_store::open(s.dir).manifest().version, 0u);
    EXPECT_EQ(data::corpus_store::open(s.dir).load_all_effective().buildings.size(), 1u);

    // A retry sweeps the orphan and lands the append exactly once.
    const ingest::append_outcome o = ingest::append_scans(s.dir, {named_building("x", 9)});
    EXPECT_EQ(o.version, 1u);
    const data::corpus_store store = data::corpus_store::open(s.dir);
    ASSERT_EQ(store.manifest().deltas.size(), 1u);
    EXPECT_EQ(store.load_all_effective().buildings.size(), 2u);
}

TEST(append_scans, interrupted_after_tmp_before_rename_recovers) {
    scoped_dir s("fisone-append-crash2");
    make_store(s, {"a"});

    ingest::append_hooks hooks;
    hooks.checkpoint = [](int step) {
        if (step == 2) throw std::runtime_error("injected crash at checkpoint 2");
    };
    EXPECT_THROW((void)ingest::append_scans(s.dir, {named_building("x", 9)}, hooks),
                 std::runtime_error);

    // Both the delta and the manifest temp exist; the committed manifest is
    // still the pre-append one, and a mount sweeps the leftovers.
    EXPECT_TRUE(std::filesystem::exists(data::manifest_temp_path(s.dir)));
    EXPECT_EQ(data::corpus_store::open(s.dir).manifest().version, 0u);
    EXPECT_FALSE(std::filesystem::exists(data::manifest_temp_path(s.dir)));

    const ingest::append_outcome o = ingest::append_scans(s.dir, {named_building("x", 9)});
    EXPECT_EQ(o.version, 1u);
    EXPECT_EQ(data::corpus_store::open(s.dir).load_all_effective().buildings.size(), 2u);
}

// ---------- federation::watch_registry ----------

runtime::building_report make_report(std::size_t index, const std::string& name) {
    runtime::building_report r;
    r.index = index;
    r.name = name;
    r.ok = true;
    return r;
}

TEST(watch_registry, delivers_to_matching_live_subscribers_only) {
    federation::watch_registry reg;
    const auto alive_a = std::make_shared<int>(1);
    const auto alive_b = std::make_shared<int>(2);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got_a;  // (corr, version)
    std::vector<std::uint64_t> got_b;

    reg.subscribe("bldg-1", 1, 50, alive_a, [&](const api::response& r) {
        const auto* p = std::get_if<api::push_response>(&r);
        ASSERT_NE(p, nullptr);
        got_a.emplace_back(p->correlation_id, p->version);
    });
    reg.subscribe("bldg-1", 2, 60, alive_b, [&](const api::response& r) {
        got_b.push_back(std::get<api::push_response>(r).correlation_id);
    });
    reg.subscribe("bldg-2", 1, 51, alive_a, [&](const api::response&) {
        FAIL() << "bldg-2 was never published";
    });
    EXPECT_EQ(reg.live_count(), 3u);

    EXPECT_EQ(reg.publish("bldg-1", 7, make_report(1, "bldg-1")), 2u);
    EXPECT_EQ(reg.publish("bldg-9", 7, make_report(9, "bldg-9")), 0u);
    ASSERT_EQ(got_a.size(), 1u);
    EXPECT_EQ(got_a[0], (std::pair<std::uint64_t, std::uint64_t>{50, 7}));
    ASSERT_EQ(got_b.size(), 1u);
    EXPECT_EQ(got_b[0], 60u);
}

TEST(watch_registry, resubscribe_repoints_and_unsubscribe_removes) {
    federation::watch_registry reg;
    const auto alive = std::make_shared<int>(0);
    int first_hits = 0;
    int second_hits = 0;
    reg.subscribe("b", 1, 10, alive, [&](const api::response&) { ++first_hits; });
    // Same (name, token): the subscription is re-pointed, not duplicated.
    reg.subscribe("b", 1, 11, alive, [&](const api::response&) { ++second_hits; });
    EXPECT_EQ(reg.live_count(), 1u);
    EXPECT_EQ(reg.publish("b", 1, make_report(0, "b")), 1u);
    EXPECT_EQ(first_hits, 0);
    EXPECT_EQ(second_hits, 1);

    EXPECT_TRUE(reg.unsubscribe("b", 1));
    EXPECT_FALSE(reg.unsubscribe("b", 1));  // already gone
    EXPECT_EQ(reg.live_count(), 0u);
    EXPECT_EQ(reg.publish("b", 2, make_report(0, "b")), 0u);
    EXPECT_EQ(second_hits, 1);
}

TEST(watch_registry, expired_subscribers_are_pruned_not_delivered) {
    federation::watch_registry reg;
    auto alive = std::make_shared<int>(0);
    int hits = 0;
    reg.subscribe("b", 1, 10, alive, [&](const api::response&) { ++hits; });
    EXPECT_EQ(reg.live_count(), 1u);
    alive.reset();  // the emitter (connection) died
    EXPECT_EQ(reg.publish("b", 1, make_report(0, "b")), 0u);
    EXPECT_EQ(hits, 0);
    EXPECT_EQ(reg.live_count(), 0u);
}

// ---------- ingest_manager ----------

/// Answers every submitted re-run from its own thread, the way the
/// federated fleet answers the manager's internal session.
class fake_fleet {
public:
    ~fake_fleet() { stop(); }

    ingest::ingest_manager::reindex_submit submit_fn() {
        return [this](std::uint64_t corr, std::size_t index, data::building b) {
            {
                const std::lock_guard<std::mutex> lock(m_);
                q_.emplace_back(corr, index, std::move(b));
            }
            cv_.notify_one();
        };
    }

    void attach(ingest::ingest_manager* mgr) {
        mgr_ = mgr;
        t_ = std::thread([this] { run(); });
    }

    void stop() {
        {
            const std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cv_.notify_all();
        if (t_.joinable()) t_.join();
    }

    std::vector<std::tuple<std::uint64_t, std::size_t, std::string>> submissions() {
        const std::lock_guard<std::mutex> lock(m_);
        return seen_;
    }

private:
    void run() {
        for (;;) {
            std::tuple<std::uint64_t, std::size_t, data::building> item;
            {
                std::unique_lock<std::mutex> lock(m_);
                cv_.wait(lock, [this] { return stop_ || !q_.empty(); });
                if (q_.empty()) return;
                item = std::move(q_.front());
                q_.pop_front();
                seen_.emplace_back(std::get<0>(item), std::get<1>(item),
                                   std::get<2>(item).name);
            }
            runtime::building_report r =
                make_report(std::get<1>(item), std::get<2>(item).name);
            mgr_->on_reindex_result(std::get<0>(item), &r);
        }
    }

    ingest::ingest_manager* mgr_ = nullptr;
    std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::tuple<std::uint64_t, std::size_t, data::building>> q_;
    std::vector<std::tuple<std::uint64_t, std::size_t, std::string>> seen_;
    bool stop_ = false;
    std::thread t_;
};

TEST(ingest_manager, appends_detect_dirty_and_publish_rerun_results) {
    scoped_dir s("fisone-mgr-basic");
    make_store(s, {"a", "b", "c"});

    std::mutex pub_m;
    std::vector<std::tuple<std::string, std::uint64_t, std::size_t>> published;
    fake_fleet fleet;
    std::vector<ingest::store_binding> bindings(1);
    bindings[0].dir = s.dir;
    bindings[0].corpus_name = "city";
    bindings[0].base_offset = 10;
    {
        ingest::ingest_manager mgr(
            bindings, fleet.submit_fn(),
            [&](const std::string& name, std::uint64_t version,
                const runtime::building_report& r) {
                const std::lock_guard<std::mutex> lock(pub_m);
                published.emplace_back(name, version, r.index);
            });
        fleet.attach(&mgr);

        // Batch 1: touch "b", introduce "d" — both dirty.
        std::promise<ingest::append_ack> p1;
        mgr.enqueue_append("city",
                           {named_building("b", 700), named_building("d", 701)},
                           [&](const ingest::append_ack& a) { p1.set_value(a); });
        const ingest::append_ack a1 = p1.get_future().get();
        EXPECT_TRUE(a1.error.empty()) << a1.error;
        EXPECT_EQ(a1.version, 1u);
        EXPECT_EQ(a1.accepted, 2u);
        EXPECT_EQ(a1.dirty, 2u);

        // Batch 2: touch "b" again — "a", "c", "d" stay clean.
        std::promise<ingest::append_ack> p2;
        mgr.enqueue_append("city", {named_building("b", 702)},
                           [&](const ingest::append_ack& a) { p2.set_value(a); });
        const ingest::append_ack a2 = p2.get_future().get();
        EXPECT_EQ(a2.version, 2u);
        EXPECT_EQ(a2.dirty, 1u);

        // Unknown corpus: a typed failure, nothing submitted.
        std::promise<ingest::append_ack> p3;
        mgr.enqueue_append("nowhere", {named_building("z", 703)},
                           [&](const ingest::append_ack& a) { p3.set_value(a); });
        EXPECT_FALSE(p3.get_future().get().error.empty());

        mgr.wait_idle();
        EXPECT_EQ(mgr.appends_total(), 2u);
        EXPECT_EQ(mgr.dirty_total(), 3u);
    }  // the manager's destructor waits out every pending re-run

    // Re-runs carried global indices: base offset 10, "b" local 1, "d"
    // appended at the local tail (index 3).
    const auto subs = fleet.submissions();
    ASSERT_EQ(subs.size(), 3u);
    EXPECT_EQ(std::get<2>(subs[0]), "b");
    EXPECT_EQ(std::get<1>(subs[0]), 11u);
    EXPECT_EQ(std::get<2>(subs[1]), "d");
    EXPECT_EQ(std::get<1>(subs[1]), 13u);
    EXPECT_EQ(std::get<2>(subs[2]), "b");

    const std::lock_guard<std::mutex> lock(pub_m);
    ASSERT_EQ(published.size(), 3u);
    EXPECT_EQ(published[0],
              (std::tuple<std::string, std::uint64_t, std::size_t>{"b", 1, 11}));
    EXPECT_EQ(published[1],
              (std::tuple<std::string, std::uint64_t, std::size_t>{"d", 1, 13}));
    EXPECT_EQ(published[2],
              (std::tuple<std::string, std::uint64_t, std::size_t>{"b", 2, 11}));
}

TEST(ingest_manager, concurrent_appenders_serialise_without_losing_batches) {
    scoped_dir s("fisone-mgr-concurrent");
    make_store(s, {"a", "b"});

    fake_fleet fleet;
    std::vector<ingest::store_binding> bindings(1);
    bindings[0].dir = s.dir;
    bindings[0].corpus_name = "city";
    std::atomic<std::size_t> pushes{0};
    {
        ingest::ingest_manager mgr(
            bindings, fleet.submit_fn(),
            [&](const std::string&, std::uint64_t, const runtime::building_report&) {
                pushes.fetch_add(1);
            });
        fleet.attach(&mgr);

        constexpr std::size_t k_threads = 4;
        constexpr std::size_t k_appends_each = 3;
        std::atomic<std::size_t> acked{0};
        std::vector<std::thread> writers;
        for (std::size_t t = 0; t < k_threads; ++t) {
            writers.emplace_back([&, t] {
                for (std::size_t k = 0; k < k_appends_each; ++k) {
                    mgr.enqueue_append(
                        "city",
                        {named_building("hot-" + std::to_string(t), 1000 + t * 10 + k)},
                        [&](const ingest::append_ack& a) {
                            if (a.error.empty() && a.dirty >= 1) acked.fetch_add(1);
                        });
                }
            });
        }
        for (std::thread& w : writers) w.join();
        mgr.wait_idle();
        EXPECT_EQ(acked.load(), k_threads * k_appends_each);
        EXPECT_EQ(mgr.appends_total(), k_threads * k_appends_each);
    }

    // Every batch landed durably and in one total order.
    const data::corpus_store store = data::corpus_store::open(s.dir);
    EXPECT_EQ(store.manifest().version, 12u);
    EXPECT_EQ(store.manifest().deltas.size(), 12u);
    // Base 2 + one new "hot-<t>" building per writer thread.
    EXPECT_EQ(store.load_all_effective().buildings.size(), 2u + 4u);
    EXPECT_GE(pushes.load(), 4u);
}

}  // namespace
