// Tests for the async service subsystem: sharded corpus store round-trips,
// NDJSON serialisation, floor_service submission/backpressure/cancellation,
// and the end-to-end determinism contract — input-order NDJSON re-export is
// byte-identical across worker counts and shard sizes, and identical to a
// blocking batch_runner campaign over the same corpus.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "data/corpus_store.hpp"
#include "runtime/batch_runner.hpp"
#include "service/floor_service.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone;

// --- helpers ----------------------------------------------------------------

data::building tiny_building(std::size_t i) {
    sim::building_spec spec;
    spec.name = "svc-";
    spec.name += std::to_string(i);
    spec.num_floors = 3 + i % 2;
    spec.samples_per_floor = 20;
    spec.aps_per_floor = 6;
    spec.seed = 500 + i;
    return sim::generate_building(spec).building;
}

data::corpus tiny_corpus(std::size_t count) {
    data::corpus c;
    c.name = "tiny";
    for (std::size_t i = 0; i < count; ++i) c.buildings.push_back(tiny_building(i));
    return c;
}

core::fis_one_config fast_pipeline() {
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 8;
    cfg.gnn.epochs = 2;
    cfg.gnn.walks.walks_per_node = 2;
    return cfg;
}

service::service_config fast_service_config(std::size_t num_threads) {
    service::service_config cfg;
    cfg.pipeline = fast_pipeline();
    cfg.seed = 99;
    cfg.num_threads = num_threads;
    return cfg;
}

/// Fresh scratch directory under the system temp dir.
std::string scratch_dir(const std::string& tag) {
    const auto dir = std::filesystem::temp_directory_path() / ("fisone_test_" + tag);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

void expect_building_eq(const data::building& a, const data::building& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_floors, b.num_floors);
    EXPECT_EQ(a.num_macs, b.num_macs);
    EXPECT_EQ(a.labeled_sample, b.labeled_sample);
    EXPECT_EQ(a.labeled_floor, b.labeled_floor);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].true_floor, b.samples[i].true_floor);
        EXPECT_EQ(a.samples[i].device_id, b.samples[i].device_id);
        ASSERT_EQ(a.samples[i].observations.size(), b.samples[i].observations.size());
        for (std::size_t j = 0; j < a.samples[i].observations.size(); ++j) {
            EXPECT_EQ(a.samples[i].observations[j].mac_id, b.samples[i].observations[j].mac_id);
            EXPECT_DOUBLE_EQ(a.samples[i].observations[j].rss_dbm,
                             b.samples[i].observations[j].rss_dbm);
        }
    }
}

// --- corpus_store: manifest -------------------------------------------------

TEST(corpus_manifest, round_trip_and_totals) {
    data::corpus_manifest m;
    m.corpus_name = "city";
    m.shards.push_back({"shard-0000.csv", 0, 4});
    m.shards.push_back({"shard-0001.csv", 4, 2});
    EXPECT_EQ(m.total_buildings(), 6u);

    std::stringstream ss;
    data::save_manifest(m, ss);
    const data::corpus_manifest loaded = data::load_manifest(ss);
    EXPECT_EQ(loaded.corpus_name, "city");
    ASSERT_EQ(loaded.shards.size(), 2u);
    EXPECT_EQ(loaded.shards[1].filename, "shard-0001.csv");
    EXPECT_EQ(loaded.shards[1].first_index, 4u);
    EXPECT_EQ(loaded.shards[1].num_buildings, 2u);
}

TEST(corpus_manifest, rejects_inconsistencies) {
    data::corpus_manifest gap;
    gap.shards.push_back({"a.csv", 0, 4});
    gap.shards.push_back({"b.csv", 5, 2});  // hole at index 4
    EXPECT_THROW(gap.validate(), std::invalid_argument);

    data::corpus_manifest empty_shard;
    empty_shard.shards.push_back({"a.csv", 0, 0});
    EXPECT_THROW(empty_shard.validate(), std::invalid_argument);

    // A delimiter in the corpus name would produce an unreadable store;
    // save_manifest must reject it at write time.
    data::corpus_manifest comma_name;
    comma_name.corpus_name = "NYC, downtown";
    comma_name.shards.push_back({"a.csv", 0, 1});
    std::stringstream sink;
    EXPECT_THROW(data::save_manifest(comma_name, sink), std::invalid_argument);

    std::stringstream bad_magic("not a manifest\n");
    EXPECT_THROW((void)data::load_manifest(bad_magic), std::invalid_argument);

    std::stringstream bad_row("# fisone-corpus v1\nbogus,1\n");
    EXPECT_THROW((void)data::load_manifest(bad_row), std::invalid_argument);
}

// --- corpus_store: shards ---------------------------------------------------

TEST(corpus_store, shard_writer_reader_round_trip) {
    const std::string dir = scratch_dir("shard_rt");
    const std::string path = dir + "/shard.csv";
    const data::corpus c = tiny_corpus(3);
    {
        data::shard_writer writer(path);
        for (const auto& b : c.buildings) writer.append(b);
        EXPECT_EQ(writer.count(), 3u);
        writer.close();
        EXPECT_THROW(writer.append(c.buildings[0]), std::logic_error);
    }
    data::shard_reader reader(path);
    for (std::size_t i = 0; i < 3; ++i) {
        auto b = reader.next();
        ASSERT_TRUE(b.has_value()) << "building " << i;
        expect_building_eq(*b, c.buildings[i]);
        EXPECT_EQ(reader.position(), i + 1);
    }
    EXPECT_FALSE(reader.next().has_value());
}

TEST(corpus_store, reader_rejects_bad_and_truncated_shards) {
    const std::string dir = scratch_dir("shard_bad");
    {
        std::ofstream out(dir + "/bad_magic.csv");
        out << "# not a shard\n";
    }
    EXPECT_THROW(data::shard_reader(dir + "/bad_magic.csv"), std::invalid_argument);
    EXPECT_THROW(data::shard_reader(dir + "/missing.csv"), std::ios_base::failure);

    {
        // A building block with no `end` marker: truncated mid-shard.
        std::ofstream out(dir + "/truncated.csv");
        out << "# fisone-shard v1\n# fisone-building v1\nname,x\n";
    }
    data::shard_reader reader(dir + "/truncated.csv");
    EXPECT_THROW((void)reader.next(), std::invalid_argument);
}

TEST(corpus_store, split_round_trips_at_every_shard_size) {
    const data::corpus c = tiny_corpus(5);
    for (const std::size_t shard_size : {1u, 2u, 3u, 5u, 9u}) {
        const std::string dir = scratch_dir("split_" + std::to_string(shard_size));
        const data::corpus_manifest m = data::write_corpus_store(c, dir, shard_size);
        EXPECT_EQ(m.total_buildings(), 5u);
        EXPECT_EQ(m.shards.size(), (5 + shard_size - 1) / shard_size);

        const data::corpus_store store = data::corpus_store::open(dir);
        EXPECT_EQ(store.manifest().corpus_name, "tiny");
        const data::corpus loaded = store.load_all();
        ASSERT_EQ(loaded.buildings.size(), c.buildings.size());
        for (std::size_t i = 0; i < c.buildings.size(); ++i)
            expect_building_eq(loaded.buildings[i], c.buildings[i]);
    }
}

TEST(corpus_store, rejects_degenerate_writes) {
    const data::corpus c = tiny_corpus(1);
    EXPECT_THROW((void)data::write_corpus_store(c, scratch_dir("deg"), 0),
                 std::invalid_argument);
    EXPECT_THROW((void)data::write_corpus_store(data::corpus{}, scratch_dir("deg2"), 2),
                 std::invalid_argument);
}

TEST(corpus_store, for_each_building_streams_in_corpus_order) {
    const data::corpus c = tiny_corpus(4);
    const std::string dir = scratch_dir("stream");
    static_cast<void>(data::write_corpus_store(c, dir, 3));
    const data::corpus_store store = data::corpus_store::open(dir);
    std::vector<std::size_t> seen;
    store.for_each_building([&](std::size_t index, data::building&& b) {
        seen.push_back(index);
        expect_building_eq(b, c.buildings[index]);
    });
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

// --- ndjson -----------------------------------------------------------------

TEST(ndjson, escapes_strings) {
    EXPECT_EQ(service::json_escape("plain"), "plain");
    EXPECT_EQ(service::json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(service::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(service::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(ndjson, ok_report_line_has_full_schema) {
    runtime::building_report report;
    report.index = 3;
    report.name = "hall \"A\"";
    report.ok = true;
    report.seed = 42;
    report.seconds = 0.5;
    report.result.num_clusters = 2;
    report.result.cluster_to_floor = {0, 1};
    report.result.has_ground_truth = true;
    report.result.ari = 0.5;
    report.result.nmi = 1.0;
    report.result.edit_distance = 0.0;

    const std::string line = service::to_ndjson(report);
    EXPECT_EQ(line,
              "{\"index\":3,\"name\":\"hall \\\"A\\\"\",\"ok\":true,\"seed\":42,"
              "\"num_clusters\":2,\"cluster_to_floor\":[0,1],\"has_ground_truth\":true,"
              "\"ari\":0.5,\"nmi\":1,\"edit_distance\":0,\"seconds\":0.5,\"error\":null}");

    service::ndjson_options no_timing;
    no_timing.include_timing = false;
    EXPECT_EQ(service::to_ndjson(report, no_timing).find("seconds"), std::string::npos);
}

TEST(ndjson, failed_report_nulls_result_fields) {
    runtime::building_report report;
    report.index = 0;
    report.name = "broken";
    report.ok = false;
    report.error = "validate failed";
    const std::string line = service::to_ndjson(report);
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(line.find("\"num_clusters\":null"), std::string::npos);
    EXPECT_NE(line.find("\"error\":\"validate failed\""), std::string::npos);
}

TEST(ndjson, exporter_counts_lines_and_input_order_rejects_duplicates) {
    runtime::building_report a;
    a.index = 1;
    a.name = "a";
    runtime::building_report b;
    b.index = 0;
    b.name = "b";

    std::ostringstream stream;
    service::ndjson_exporter exporter(stream);
    exporter.write(a);
    exporter.write(b);
    EXPECT_EQ(exporter.lines_written(), 2u);

    std::ostringstream ordered;
    service::export_input_order(ordered, {a, b});
    // Input order: index 0 first, despite completion order.
    EXPECT_LT(ordered.str().find("\"b\""), ordered.str().find("\"a\""));

    std::ostringstream dup;
    EXPECT_THROW(service::export_input_order(dup, {a, a}), std::invalid_argument);
}

// --- floor_service ----------------------------------------------------------

TEST(floor_service, building_submits_match_batch_runner_bitwise) {
    const data::corpus c = tiny_corpus(3);

    runtime::batch_config batch_cfg;
    batch_cfg.pipeline = fast_pipeline();
    batch_cfg.seed = 99;
    batch_cfg.num_threads = 1;
    const runtime::batch_result batch = runtime::batch_runner(batch_cfg).run(c);

    service::floor_service svc(fast_service_config(2));
    std::vector<service::floor_service::job> jobs;
    for (const auto& b : c.buildings) jobs.push_back(svc.submit(b));
    svc.wait_all();

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_EQ(jobs[i].state(), service::job_state::done);
        const auto& reports = jobs[i].reports();
        ASSERT_EQ(reports.size(), 1u);
        const runtime::building_report& served = reports[0];
        const runtime::building_report& batched = batch.reports[i];
        EXPECT_TRUE(served.ok);
        EXPECT_EQ(served.index, batched.index);
        EXPECT_EQ(served.seed, batched.seed);
        EXPECT_EQ(served.seed, runtime::task_seed(99, i));
        EXPECT_EQ(served.result.assignment, batched.result.assignment);
        EXPECT_EQ(served.result.cluster_to_floor, batched.result.cluster_to_floor);
        EXPECT_EQ(served.result.embeddings, batched.result.embeddings);
        EXPECT_EQ(served.result.ari, batched.result.ari);
    }

    const service::service_stats stats = svc.stats();
    EXPECT_EQ(stats.jobs_submitted, 3u);
    EXPECT_EQ(stats.jobs_done, 3u);
    EXPECT_EQ(stats.buildings_ok, 3u);
    EXPECT_EQ(stats.buildings_done, 3u);
    EXPECT_GT(stats.latency_p50, 0.0);
    EXPECT_GE(stats.latency_p99, stats.latency_p50);
}

TEST(floor_service, shard_job_streams_and_matches_batch) {
    const data::corpus c = tiny_corpus(4);
    const std::string dir = scratch_dir("svc_shard");
    static_cast<void>(data::write_corpus_store(c, dir, 2));
    const data::corpus_store store = data::corpus_store::open(dir);

    runtime::batch_config batch_cfg;
    batch_cfg.pipeline = fast_pipeline();
    batch_cfg.seed = 99;
    batch_cfg.num_threads = 1;
    const runtime::batch_result batch = runtime::batch_runner(batch_cfg).run(c);

    service::floor_service svc(fast_service_config(2));
    std::vector<service::floor_service::job> jobs;
    for (std::size_t s = 0; s < store.num_shards(); ++s)
        jobs.push_back(svc.submit(service::make_shard_ref(store, s)));
    svc.wait_all();

    for (std::size_t s = 0; s < jobs.size(); ++s) {
        const auto& reports = jobs[s].reports();
        ASSERT_EQ(reports.size(), 2u);
        for (const auto& served : reports) {
            ASSERT_TRUE(served.ok) << served.error;
            const runtime::building_report& batched = batch.reports[served.index];
            EXPECT_EQ(served.name, batched.name);
            EXPECT_EQ(served.seed, batched.seed);
            EXPECT_EQ(served.result.assignment, batched.result.assignment);
            EXPECT_EQ(served.result.embeddings, batched.result.embeddings);
        }
    }
}

TEST(floor_service, shard_ending_early_reports_missing_buildings_failed) {
    const std::string dir = scratch_dir("svc_short");
    {
        data::shard_writer writer(dir + "/short.csv");
        writer.append(tiny_building(0));
        writer.close();
    }
    service::floor_service svc(fast_service_config(1));
    auto job = svc.submit(service::shard_ref{dir + "/short.csv", 0, 3});
    const auto& reports = job.reports();
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_TRUE(reports[0].ok);
    EXPECT_FALSE(reports[1].ok);
    EXPECT_NE(reports[1].error.find("shard ended early"), std::string::npos);
    EXPECT_FALSE(reports[2].ok);
    EXPECT_EQ(job.state(), service::job_state::done);  // not a cancellation

    const service::service_stats stats = svc.stats();
    EXPECT_EQ(stats.buildings_ok, 1u);
    EXPECT_EQ(stats.buildings_failed, 2u);
    EXPECT_EQ(stats.buildings_cancelled, 0u);
}

TEST(floor_service, pause_gates_jobs_and_cancel_skips_queued_work) {
    service::service_config cfg = fast_service_config(1);
    service::floor_service svc(cfg);
    svc.pause();

    auto j1 = svc.submit(tiny_building(0));
    auto j2 = svc.submit(tiny_building(1));
    EXPECT_THROW(svc.wait_all(), std::logic_error);  // paused with pending jobs

    EXPECT_TRUE(j2.cancel());
    svc.resume();
    svc.wait_all();

    EXPECT_EQ(j1.state(), service::job_state::done);
    EXPECT_TRUE(j1.reports()[0].ok);
    EXPECT_EQ(j2.state(), service::job_state::cancelled);
    ASSERT_EQ(j2.reports().size(), 1u);
    EXPECT_FALSE(j2.reports()[0].ok);
    EXPECT_EQ(j2.reports()[0].error, "cancelled");
    EXPECT_FALSE(j2.cancel());  // already finished

    const service::service_stats stats = svc.stats();
    EXPECT_EQ(stats.jobs_done, 1u);
    EXPECT_EQ(stats.jobs_cancelled, 1u);
    EXPECT_EQ(stats.buildings_ok, 1u);
    EXPECT_EQ(stats.buildings_cancelled, 1u);
}

TEST(floor_service, submit_blocks_at_max_pending_jobs) {
    service::service_config cfg = fast_service_config(1);
    cfg.max_pending_jobs = 2;
    service::floor_service svc(cfg);
    svc.pause();  // park the worker so pending jobs cannot drain

    static_cast<void>(svc.submit(tiny_building(0)));
    static_cast<void>(svc.submit(tiny_building(1)));
    EXPECT_EQ(svc.stats().jobs_submitted, 2u);

    std::atomic<bool> third_submitted{false};
    std::thread submitter([&] {
        static_cast<void>(svc.submit(tiny_building(2)));
        third_submitted.store(true);
    });
    // The third submit must be blocked by backpressure while paused. (A
    // short sleep can only make a broken implementation pass *flakily*; a
    // correct one never sets the flag before resume.)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(third_submitted.load());

    svc.resume();
    submitter.join();
    EXPECT_TRUE(third_submitted.load());
    svc.wait_all();
    EXPECT_EQ(svc.stats().buildings_ok, 3u);
}

TEST(floor_service, rejects_zero_backpressure_bound) {
    service::service_config cfg = fast_service_config(1);
    cfg.max_pending_jobs = 0;
    EXPECT_THROW(service::floor_service bad(cfg), std::invalid_argument);
}

TEST(floor_service, on_report_streams_in_completion_order) {
    service::service_config cfg = fast_service_config(2);
    std::atomic<std::size_t> reported{0};
    cfg.on_report = [&](const runtime::building_report& report) {
        EXPECT_FALSE(report.name.empty());
        ++reported;
    };
    service::floor_service svc(cfg);
    for (std::size_t i = 0; i < 3; ++i) static_cast<void>(svc.submit(tiny_building(i)));
    svc.wait_all();
    EXPECT_EQ(reported.load(), 3u);
}

// --- end-to-end determinism (the PR's acceptance criterion) -----------------

TEST(service_e2e, ndjson_reexport_is_byte_identical_across_threads_and_shard_sizes) {
    // ≥ 32 generated buildings, sharded to disk, served through the async
    // front-end; the input-order NDJSON must not depend on the worker count
    // or the shard size, and must equal a blocking batch over the corpus.
    const data::corpus city = tiny_corpus(32);

    runtime::batch_config batch_cfg;
    batch_cfg.pipeline = fast_pipeline();
    batch_cfg.seed = 99;
    batch_cfg.num_threads = 1;
    const runtime::batch_result batch = runtime::batch_runner(batch_cfg).run(city);
    EXPECT_EQ(batch.num_ok, city.buildings.size());
    std::ostringstream batch_ndjson;
    service::export_input_order(batch_ndjson, batch.reports);

    std::vector<std::string> exports;
    for (const std::size_t shard_size : {4u, 8u}) {
        const std::string dir = scratch_dir("e2e_s" + std::to_string(shard_size));
        static_cast<void>(data::write_corpus_store(city, dir, shard_size));
        const data::corpus_store store = data::corpus_store::open(dir);

        for (const std::size_t threads : {1u, 4u}) {
            service::floor_service svc(fast_service_config(threads));
            std::vector<service::floor_service::job> jobs;
            for (std::size_t s = 0; s < store.num_shards(); ++s)
                jobs.push_back(svc.submit(service::make_shard_ref(store, s)));
            svc.wait_all();

            std::vector<runtime::building_report> reports;
            for (const auto& job : jobs)
                for (const auto& report : job.reports()) reports.push_back(report);
            ASSERT_EQ(reports.size(), city.buildings.size());

            std::ostringstream out;
            service::export_input_order(out, std::move(reports));
            exports.push_back(out.str());
        }
    }

    ASSERT_EQ(exports.size(), 4u);
    for (std::size_t i = 1; i < exports.size(); ++i)
        EXPECT_EQ(exports[0], exports[i]) << "export " << i << " diverged";
    EXPECT_EQ(exports[0], batch_ndjson.str()) << "service diverged from batch_runner";
}

}  // namespace
