// Tests for the batch runtime: thread-pool scheduling and exception
// propagation, parallel_for index coverage, deterministic per-task
// seeding, and bit-identical batch_runner output across thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "runtime/batch_runner.hpp"
#include "sim/building_generator.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fisone;

// --- thread_pool ----------------------------------------------------------

TEST(thread_pool, resolves_zero_to_hardware) {
    EXPECT_GE(util::resolve_num_threads(0), 1u);
    EXPECT_EQ(util::resolve_num_threads(3), 3u);
}

TEST(thread_pool, rejects_absurd_thread_counts) {
    // e.g. -1 funneled through a size_t CLI knob
    EXPECT_THROW(util::thread_pool(static_cast<std::size_t>(-1)), std::invalid_argument);
}

TEST(thread_pool, concurrency_one_runs_everything_inline) {
    util::thread_pool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    bool ran = false;
    pool.submit([&ran] { ran = true; }).get();
    EXPECT_TRUE(ran);
    std::vector<int> hits(10, 0);
    pool.parallel_for(0, hits.size(), 3, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(thread_pool, submit_runs_tasks_and_reports_completion) {
    util::thread_pool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 32);
}

TEST(thread_pool, submit_propagates_exceptions_through_future) {
    util::thread_pool pool(2);
    std::future<void> f = pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool survives a throwing task.
    std::future<void> ok = pool.submit([] {});
    EXPECT_NO_THROW(ok.get());
}

TEST(thread_pool, parallel_for_covers_every_index_exactly_once) {
    util::thread_pool pool(4);
    for (const std::size_t grain : {1u, 3u, 7u, 100u, 1000u}) {
        std::vector<std::atomic<int>> hits(537);
        for (auto& h : hits) h = 0;
        pool.parallel_for(0, hits.size(), grain, [&](std::size_t b, std::size_t e) {
            ASSERT_LE(b, e);
            ASSERT_LE(e, hits.size());
            for (std::size_t i = b; i < e; ++i) ++hits[i];
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
}

TEST(thread_pool, parallel_for_respects_nonzero_begin_and_empty_range) {
    util::thread_pool pool(2);
    std::set<std::size_t> seen;
    std::mutex m;
    pool.parallel_for(10, 25, 4, [&](std::size_t b, std::size_t e) {
        const std::lock_guard<std::mutex> lock(m);
        for (std::size_t i = b; i < e; ++i) seen.insert(i);
    });
    EXPECT_EQ(seen.size(), 15u);
    EXPECT_EQ(*seen.begin(), 10u);
    EXPECT_EQ(*seen.rbegin(), 24u);

    bool ran = false;
    pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(thread_pool, parallel_for_rethrows_chunk_exception) {
    util::thread_pool pool(4);
    EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                   [&](std::size_t b, std::size_t) {
                                       if (b == 42) throw std::invalid_argument("chunk boom");
                                   }),
                 std::invalid_argument);
    // Still usable afterwards.
    std::atomic<int> n{0};
    pool.parallel_for(0, 8, 1, [&](std::size_t, std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 8);
}

TEST(thread_pool, free_parallel_for_runs_serially_without_pool) {
    std::vector<int> hits(64, 0);
    util::parallel_for(nullptr, 0, hits.size(), 5, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (const int h : hits) EXPECT_EQ(h, 1);
}

// --- batch_runner ---------------------------------------------------------

TEST(batch_runner, task_seed_is_deterministic_and_spread) {
    EXPECT_EQ(runtime::task_seed(7, 3), runtime::task_seed(7, 3));
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 64; ++i) seeds.insert(runtime::task_seed(7, i));
    EXPECT_EQ(seeds.size(), 64u);
    EXPECT_NE(runtime::task_seed(7, 0), runtime::task_seed(8, 0));
}

std::vector<data::building> make_fleet(std::size_t count) {
    std::vector<data::building> fleet;
    fleet.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        sim::building_spec spec;
        spec.name = "b";  // += sidesteps a gcc-12 -Wrestrict false positive
        spec.name += std::to_string(i);
        spec.num_floors = 3 + i % 2;
        spec.samples_per_floor = 40;
        spec.aps_per_floor = 8;
        spec.seed = 100 + i;
        fleet.push_back(sim::generate_building(spec).building);
    }
    return fleet;
}

runtime::batch_config fast_batch_config(std::size_t num_threads) {
    runtime::batch_config cfg;
    cfg.pipeline.gnn.embedding_dim = 8;
    cfg.pipeline.gnn.epochs = 2;
    cfg.pipeline.gnn.walks.walks_per_node = 2;
    cfg.seed = 99;
    cfg.num_threads = num_threads;
    return cfg;
}

TEST(batch_runner, output_is_bit_identical_across_thread_counts) {
    const std::vector<data::building> fleet = make_fleet(4);
    const runtime::batch_result serial = runtime::batch_runner(fast_batch_config(1)).run(fleet);
    const runtime::batch_result pooled = runtime::batch_runner(fast_batch_config(4)).run(fleet);

    ASSERT_EQ(serial.reports.size(), fleet.size());
    ASSERT_EQ(pooled.reports.size(), fleet.size());
    EXPECT_EQ(serial.num_ok, fleet.size());
    EXPECT_EQ(pooled.num_ok, fleet.size());
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        const core::fis_one_result& a = serial.reports[i].result;
        const core::fis_one_result& b = pooled.reports[i].result;
        EXPECT_EQ(serial.reports[i].name, pooled.reports[i].name);
        EXPECT_EQ(a.num_clusters, b.num_clusters) << "building " << i;
        EXPECT_EQ(a.assignment, b.assignment) << "building " << i;
        EXPECT_EQ(a.cluster_to_floor, b.cluster_to_floor) << "building " << i;
        EXPECT_EQ(a.predicted_floor, b.predicted_floor) << "building " << i;
        EXPECT_EQ(a.embeddings, b.embeddings) << "building " << i;  // exact
        EXPECT_EQ(a.ari, b.ari) << "building " << i;
        EXPECT_EQ(a.nmi, b.nmi) << "building " << i;
        EXPECT_EQ(a.edit_distance, b.edit_distance) << "building " << i;
    }
    EXPECT_EQ(serial.ari.mean(), pooled.ari.mean());
    EXPECT_EQ(serial.nmi.mean(), pooled.nmi.mean());
}

TEST(batch_runner, kernel_pool_is_bit_identical_to_serial_kernels) {
    // Same building, same seeds; only fis_one_config::num_threads differs.
    const std::vector<data::building> fleet = make_fleet(1);
    runtime::batch_config serial_cfg = fast_batch_config(1);
    serial_cfg.pipeline.num_threads = 1;
    runtime::batch_config pooled_cfg = fast_batch_config(1);
    pooled_cfg.pipeline.num_threads = 4;

    const runtime::batch_result a = runtime::batch_runner(serial_cfg).run(fleet);
    const runtime::batch_result b = runtime::batch_runner(pooled_cfg).run(fleet);
    ASSERT_TRUE(a.reports[0].ok);
    ASSERT_TRUE(b.reports[0].ok);
    EXPECT_EQ(a.reports[0].result.embeddings, b.reports[0].result.embeddings);
    EXPECT_EQ(a.reports[0].result.assignment, b.reports[0].result.assignment);
    EXPECT_EQ(a.reports[0].result.cluster_to_floor, b.reports[0].result.cluster_to_floor);
}

TEST(batch_runner, progress_callback_sees_every_building) {
    const std::vector<data::building> fleet = make_fleet(3);
    runtime::batch_config cfg = fast_batch_config(2);
    std::set<std::size_t> indices;
    std::size_t last_completed = 0;
    cfg.on_progress = [&](const runtime::batch_progress& p) {
        EXPECT_EQ(p.total, 3u);
        ASSERT_NE(p.last, nullptr);
        indices.insert(p.last->index);
        last_completed = p.completed;  // serialised by the runner's mutex
    };
    const runtime::batch_result result = runtime::batch_runner(cfg).run(fleet);
    EXPECT_EQ(result.num_ok, 3u);
    EXPECT_EQ(indices.size(), 3u);
    EXPECT_EQ(last_completed, 3u);
}

TEST(batch_runner, failed_building_is_reported_not_fatal) {
    std::vector<data::building> fleet = make_fleet(2);
    fleet[1].labeled_sample = fleet[1].samples.size() + 10;  // fails validate()
    const runtime::batch_result result = runtime::batch_runner(fast_batch_config(2)).run(fleet);
    EXPECT_EQ(result.num_ok, 1u);
    EXPECT_EQ(result.num_failed, 1u);
    EXPECT_TRUE(result.reports[0].ok);
    EXPECT_FALSE(result.reports[1].ok);
    EXPECT_FALSE(result.reports[1].error.empty());
}

TEST(batch_runner, reused_pool_gives_identical_results_across_runs) {
    // The pool is constructed with the runner and shared by every run();
    // repeated campaigns must be bit-identical to each other and carry the
    // derived per-task seed in their reports.
    const std::vector<data::building> fleet = make_fleet(3);
    const runtime::batch_runner runner(fast_batch_config(4));
    const runtime::batch_result first = runner.run(fleet);
    const runtime::batch_result second = runner.run(fleet);
    ASSERT_EQ(first.reports.size(), second.reports.size());
    for (std::size_t i = 0; i < first.reports.size(); ++i) {
        EXPECT_EQ(first.reports[i].seed, runtime::task_seed(99, i));
        EXPECT_EQ(second.reports[i].seed, first.reports[i].seed);
        EXPECT_EQ(first.reports[i].result.assignment, second.reports[i].result.assignment);
        EXPECT_EQ(first.reports[i].result.embeddings, second.reports[i].result.embeddings);
    }
}

TEST(batch_runner, run_building_task_isolates_failures) {
    const std::vector<data::building> fleet = make_fleet(1);
    const runtime::building_report ok_report = runtime::run_building_task(
        fast_batch_config(1).pipeline, 99, 0, fleet[0], /*single_thread_kernels=*/false);
    EXPECT_TRUE(ok_report.ok);
    EXPECT_EQ(ok_report.name, fleet[0].name);
    EXPECT_EQ(ok_report.seed, runtime::task_seed(99, 0));

    data::building broken = fleet[0];
    broken.labeled_sample = broken.samples.size() + 1;
    const runtime::building_report bad_report = runtime::run_building_task(
        fast_batch_config(1).pipeline, 99, 0, broken, /*single_thread_kernels=*/false);
    EXPECT_FALSE(bad_report.ok);
    EXPECT_FALSE(bad_report.error.empty());
}

TEST(batch_runner, corpus_overload_matches_vector_overload) {
    data::corpus corpus;
    corpus.name = "fleet";
    corpus.buildings = make_fleet(2);
    const runtime::batch_runner runner(fast_batch_config(1));
    const runtime::batch_result a = runner.run(corpus);
    const runtime::batch_result b = runner.run(corpus.buildings);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i)
        EXPECT_EQ(a.reports[i].result.assignment, b.reports[i].result.assignment);
}

}  // namespace
