// Tests for src/tsp: Held–Karp exact DP vs brute force, 2-opt quality,
// and the Theorem-1 structure used by the cluster indexer.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "tsp/tsp.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone::tsp;
using fisone::linalg::matrix;
using fisone::util::rng;

matrix random_symmetric_distances(std::size_t n, rng& gen) {
    matrix d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double w = gen.uniform(0.1, 10.0);
            d(i, j) = w;
            d(j, i) = w;
        }
    return d;
}

bool is_permutation_from(const std::vector<std::size_t>& order, std::size_t n,
                         std::size_t start) {
    if (order.size() != n || order.front() != start) return false;
    std::vector<bool> seen(n, false);
    for (const std::size_t v : order) {
        if (v >= n || seen[v]) return false;
        seen[v] = true;
    }
    return true;
}

TEST(path_cost, sums_consecutive_edges) {
    const matrix d{{0, 1, 5}, {1, 0, 2}, {5, 2, 0}};
    EXPECT_DOUBLE_EQ(path_cost(d, {0, 1, 2}), 3.0);
    EXPECT_DOUBLE_EQ(path_cost(d, {0, 2, 1}), 7.0);
    EXPECT_DOUBLE_EQ(path_cost(d, {1}), 0.0);
}

TEST(held_karp, trivial_sizes) {
    matrix d1(1, 1, 0.0);
    const path_result r1 = held_karp_path(d1, 0);
    EXPECT_EQ(r1.order, (std::vector<std::size_t>{0}));
    EXPECT_DOUBLE_EQ(r1.cost, 0.0);

    matrix d2{{0, 3}, {3, 0}};
    const path_result r2 = held_karp_path(d2, 1);
    EXPECT_EQ(r2.order, (std::vector<std::size_t>{1, 0}));
    EXPECT_DOUBLE_EQ(r2.cost, 3.0);
}

TEST(held_karp, chain_graph_recovers_line) {
    // Points on a line: 0—1—2—3—4 with near distances smaller; the optimal
    // Hamiltonian path from 0 walks the chain in order.
    const std::size_t n = 5;
    matrix d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            d(i, j) = std::abs(static_cast<double>(i) - static_cast<double>(j));
    const path_result r = held_karp_path(d, 0);
    EXPECT_EQ(r.order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
    EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

// Property sweep: Held–Karp must equal exhaustive search.
class held_karp_matches_brute_force : public ::testing::TestWithParam<int> {};

TEST_P(held_karp_matches_brute_force, on_random_instances) {
    rng gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
    const std::size_t n = 3 + GetParam() % 6;  // 3..8 cities
    const matrix d = random_symmetric_distances(n, gen);
    const std::size_t start = gen.uniform_index(n);
    const path_result exact = held_karp_path(d, start);
    const path_result brute = brute_force_path(d, start);
    EXPECT_TRUE(is_permutation_from(exact.order, n, start));
    EXPECT_NEAR(exact.cost, brute.cost, 1e-9);
    EXPECT_NEAR(path_cost(d, exact.order), exact.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(random_instances, held_karp_matches_brute_force,
                         ::testing::Range(0, 20));

// Property sweep: 2-opt stays close to optimal and is always valid.
class two_opt_quality : public ::testing::TestWithParam<int> {};

TEST_P(two_opt_quality, near_optimal_on_random_instances) {
    rng gen(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
    const std::size_t n = 4 + GetParam() % 5;  // 4..8
    const matrix d = random_symmetric_distances(n, gen);
    const std::size_t start = gen.uniform_index(n);
    const path_result exact = held_karp_path(d, start);
    const path_result approx = two_opt_path(d, start, gen);
    EXPECT_TRUE(is_permutation_from(approx.order, n, start));
    EXPECT_GE(approx.cost, exact.cost - 1e-9);
    EXPECT_LE(approx.cost, exact.cost * 1.25 + 1e-9);  // restarts keep it close
}

INSTANTIATE_TEST_SUITE_P(random_instances, two_opt_quality, ::testing::Range(0, 20));

TEST(two_opt, handles_larger_instance) {
    rng gen(3);
    const std::size_t n = 40;  // beyond Held–Karp's practical range
    const matrix d = random_symmetric_distances(n, gen);
    const path_result r = two_opt_path(d, 7, gen, 4);
    EXPECT_TRUE(is_permutation_from(r.order, n, 7));
    EXPECT_NEAR(path_cost(d, r.order), r.cost, 1e-9);
}

TEST(theorem1, zero_return_edges_make_path_equal_tour) {
    // Theorem 1's construction: with all weights *into* the start equal to
    // zero, a tour's cost equals the Hamiltonian path cost. We verify the
    // path solver finds the ordering that maximises adjacent similarity.
    // Chain similarity: adjacent floors similar (0.8), skipping decays.
    const std::size_t n = 5;
    matrix sim(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const auto gap = static_cast<double>(i > j ? i - j : j - i);
            sim(i, j) = gap == 0 ? 1.0 : std::max(0.0, 1.0 - 0.35 * gap);
        }
    matrix w(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (i != j) w(i, j) = 1.0 - sim(i, j);
    const path_result r = held_karp_path(w, 0);
    EXPECT_EQ(r.order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(tsp, input_validation) {
    rng gen(1);
    EXPECT_THROW((void)held_karp_path(matrix(0, 0), 0), std::invalid_argument);
    EXPECT_THROW((void)held_karp_path(matrix(2, 3), 0), std::invalid_argument);
    EXPECT_THROW((void)held_karp_path(matrix(3, 3), 5), std::invalid_argument);
    EXPECT_THROW((void)held_karp_path(matrix(25, 25), 0), std::invalid_argument);
    EXPECT_THROW((void)brute_force_path(matrix(11, 11), 0), std::invalid_argument);
    EXPECT_THROW((void)two_opt_path(matrix(3, 3), 9, gen), std::invalid_argument);
    EXPECT_THROW((void)path_cost(matrix(2, 2), {0, 5}), std::invalid_argument);
}

}  // namespace
