// Tests for the versioned request/response API layer: canonical hashes
// (building content hash, config fingerprint), the binary wire codec
// (round trips, a randomized property test, and adversarial decode), the
// content-addressed LRU result cache, the server dispatcher over both
// transports, and the PR's acceptance criterion — responses via
// in-process loopback, via framed streams, and via direct floor_service
// submission are byte-identical under NDJSON re-export, with cache-on
// runs identical to cache-off ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/codec.hpp"
#include "api/message.hpp"
#include "api/result_cache.hpp"
#include "api/server.hpp"
#include "core/fis_one.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/task_executor.hpp"
#include "service/ndjson_export.hpp"
#include "sim/building_generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone;

// --- helpers ----------------------------------------------------------------

data::building tiny_building(std::size_t i) {
    sim::building_spec spec;
    spec.name = "api-";
    spec.name += std::to_string(i);
    spec.num_floors = 3 + i % 2;
    spec.samples_per_floor = 20;
    spec.aps_per_floor = 6;
    spec.seed = 900 + i;
    return sim::generate_building(spec).building;
}

data::corpus tiny_corpus(std::size_t count) {
    data::corpus c;
    c.name = "api-city";
    for (std::size_t i = 0; i < count; ++i) c.buildings.push_back(tiny_building(i));
    return c;
}

core::fis_one_config fast_pipeline() {
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 8;
    cfg.gnn.epochs = 2;
    cfg.gnn.walks.walks_per_node = 2;
    return cfg;
}

api::server_config fast_server_config(bool enable_cache) {
    api::server_config cfg;
    cfg.service.pipeline = fast_pipeline();
    cfg.service.seed = 99;
    cfg.service.num_threads = 2;
    cfg.enable_cache = enable_cache;
    return cfg;
}

/// Small random building for the codec property test (not a valid
/// pipeline input — the codec must not care).
data::building random_building(util::rng& gen) {
    data::building b;
    b.name = "rnd-" + std::to_string(gen.uniform_index(1 << 20));
    b.num_floors = 2 + static_cast<std::size_t>(gen.uniform_index(8));
    b.num_macs = 1 + static_cast<std::size_t>(gen.uniform_index(40));
    b.labeled_floor = static_cast<std::int32_t>(gen.uniform_index(4));
    const std::size_t samples = gen.uniform_index(7);
    for (std::size_t s = 0; s < samples; ++s) {
        data::rf_sample smp;
        smp.true_floor = static_cast<std::int32_t>(gen.uniform_index(7)) - 1;
        smp.device_id = static_cast<std::uint32_t>(gen.uniform_index(8));
        const std::size_t obs = gen.uniform_index(9);
        for (std::size_t o = 0; o < obs; ++o)
            smp.observations.push_back(
                {static_cast<std::uint32_t>(gen.uniform_index(40)), gen.uniform(-120.0, 0.0)});
        b.samples.push_back(std::move(smp));
    }
    b.labeled_sample =
        b.samples.empty() ? 0 : static_cast<std::size_t>(gen.uniform_index(b.samples.size()));
    return b;
}

void expect_building_eq(const data::building& a, const data::building& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_floors, b.num_floors);
    EXPECT_EQ(a.num_macs, b.num_macs);
    EXPECT_EQ(a.labeled_sample, b.labeled_sample);
    EXPECT_EQ(a.labeled_floor, b.labeled_floor);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].true_floor, b.samples[i].true_floor);
        EXPECT_EQ(a.samples[i].device_id, b.samples[i].device_id);
        ASSERT_EQ(a.samples[i].observations.size(), b.samples[i].observations.size());
        for (std::size_t j = 0; j < a.samples[i].observations.size(); ++j) {
            EXPECT_EQ(a.samples[i].observations[j].mac_id, b.samples[i].observations[j].mac_id);
            EXPECT_EQ(a.samples[i].observations[j].rss_dbm,
                      b.samples[i].observations[j].rss_dbm);
        }
    }
}

void expect_report_eq(const runtime::building_report& a, const runtime::building_report& b) {
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.result.num_clusters, b.result.num_clusters);
    EXPECT_EQ(a.result.assignment, b.result.assignment);
    EXPECT_EQ(a.result.cluster_to_floor, b.result.cluster_to_floor);
    EXPECT_EQ(a.result.predicted_floor, b.result.predicted_floor);
    EXPECT_EQ(a.result.embeddings, b.result.embeddings);
    EXPECT_EQ(a.result.ambiguous, b.result.ambiguous);
    EXPECT_EQ(a.result.has_ground_truth, b.result.has_ground_truth);
    EXPECT_EQ(a.result.ari, b.result.ari);
    EXPECT_EQ(a.result.nmi, b.result.nmi);
    EXPECT_EQ(a.result.edit_distance, b.result.edit_distance);
}

std::string ndjson_of(std::vector<runtime::building_report> reports) {
    std::ostringstream out;
    service::export_input_order(out, std::move(reports));
    return out.str();
}

// --- canonical hashes -------------------------------------------------------

TEST(content_hash, sensitive_to_every_field_and_stable) {
    const data::building b = tiny_building(0);
    EXPECT_EQ(data::content_hash(b), data::content_hash(b));

    data::building renamed = b;
    renamed.name += "x";
    EXPECT_NE(data::content_hash(renamed), data::content_hash(b));

    data::building relabeled = b;
    relabeled.labeled_floor ^= 1;
    EXPECT_NE(data::content_hash(relabeled), data::content_hash(b));

    data::building nudged = b;
    nudged.samples[0].observations[0].rss_dbm += 1e-12;  // any bit change counts
    EXPECT_NE(data::content_hash(nudged), data::content_hash(b));

    data::building fewer = b;
    fewer.samples.pop_back();
    EXPECT_NE(data::content_hash(fewer), data::content_hash(b));
}

TEST(config_fingerprint, sensitive_to_results_relevant_fields_only) {
    const core::fis_one_config base = fast_pipeline();
    EXPECT_EQ(core::config_fingerprint(base), core::config_fingerprint(base));

    core::fis_one_config seeded = base;
    seeded.seed += 1;
    EXPECT_NE(core::config_fingerprint(seeded), core::config_fingerprint(base));

    core::fis_one_config gnn_seeded = base;
    gnn_seeded.gnn.seed += 1;
    EXPECT_NE(core::config_fingerprint(gnn_seeded), core::config_fingerprint(base));

    core::fis_one_config wider = base;
    wider.gnn.embedding_dim *= 2;
    EXPECT_NE(core::config_fingerprint(wider), core::config_fingerprint(base));

    core::fis_one_config kmeans = base;
    kmeans.clustering = core::clustering_algorithm::kmeans;
    EXPECT_NE(core::config_fingerprint(kmeans), core::config_fingerprint(base));

    // num_threads never changes results (bit-identity contract), so it
    // must not change the fingerprint: cached results stay valid across
    // worker counts.
    core::fis_one_config threaded = base;
    threaded.num_threads = 8;
    EXPECT_EQ(core::config_fingerprint(threaded), core::config_fingerprint(base));
}

TEST(config_fingerprint, effective_task_config_keys_by_index) {
    const core::fis_one_config pipeline = fast_pipeline();
    const auto fp = [&](std::size_t index) {
        return core::config_fingerprint(
            runtime::effective_task_config(pipeline, 99, index, true));
    };
    EXPECT_EQ(fp(0), fp(0));
    EXPECT_NE(fp(0), fp(1));  // different index → different derived seed
    // Kernel threading must not leak into the identity.
    EXPECT_EQ(fp(3), core::config_fingerprint(
                         runtime::effective_task_config(pipeline, 99, 3, false)));
}

// --- codec: round trips -----------------------------------------------------

TEST(codec, request_round_trips_every_type) {
    api::identify_building_request ib;
    ib.correlation_id = 7;
    ib.has_index = true;
    ib.corpus_index = 12;
    ib.b = tiny_building(1);

    api::identify_shard_request is;
    is.correlation_id = 8;
    is.ref = {"/tmp/shard-0000.csv", 4, 3};

    const std::vector<api::request> requests{
        api::request(ib), api::request(is), api::request(api::get_stats_request{9}),
        api::request(api::cancel_job_request{10, 7}), api::request(api::flush_request{11})};

    for (const api::request& req : requests) {
        const std::string frame = api::encode(req);
        std::size_t consumed = 0;
        const api::decode_result<api::request> decoded = api::decode_request(frame, &consumed);
        ASSERT_TRUE(decoded.ok()) << (decoded.error ? decoded.error->message : "eof");
        EXPECT_EQ(consumed, frame.size());
        EXPECT_EQ(api::tag_of(*decoded.value), api::tag_of(req));
        EXPECT_EQ(api::correlation_id(*decoded.value), api::correlation_id(req));
    }

    // Deep checks on the payload-heavy ones.
    const auto ib2 = std::get<api::identify_building_request>(
        *api::decode_request(api::encode(api::request(ib))).value);
    EXPECT_TRUE(ib2.has_index);
    EXPECT_EQ(ib2.corpus_index, 12u);
    expect_building_eq(ib2.b, ib.b);

    const auto is2 = std::get<api::identify_shard_request>(
        *api::decode_request(api::encode(api::request(is))).value);
    EXPECT_EQ(is2.ref.path, is.ref.path);
    EXPECT_EQ(is2.ref.first_index, is.ref.first_index);
    EXPECT_EQ(is2.ref.num_buildings, is.ref.num_buildings);
}

TEST(codec, response_round_trips_every_type) {
    runtime::building_report report;
    report.index = 5;
    report.name = "hall \"B\"\n";
    report.ok = true;
    report.seed = 0xdeadbeefcafef00dULL;
    report.seconds = 0.25;
    report.result.num_clusters = 3;
    report.result.assignment = {0, 1, 2, -1};
    report.result.cluster_to_floor = {2, 0, 1};
    report.result.predicted_floor = {2, 0, 1, 0};
    report.result.embeddings = linalg::matrix{{1.5, -2.25}, {0.0, 1e-300}};
    report.result.ambiguous = true;
    report.result.ari = 0.875;

    service::service_stats stats;
    stats.jobs_submitted = 4;
    stats.jobs_done = 3;
    stats.jobs_cancelled = 1;
    stats.buildings_ok = 9;
    stats.latency_p90 = 0.125;
    stats.cache_hits = 6;
    stats.cache_misses = 2;

    const std::vector<api::response> responses{
        api::response(api::building_response{21, report}),
        api::response(api::stats_response{22, stats}),
        api::response(api::cancel_response{23, 7, true}),
        api::response(api::flush_response{24}),
        api::response(api::error_response{25, api::error_code::bad_payload, "odd bytes"})};

    for (const api::response& resp : responses) {
        const std::string frame = api::encode(resp);
        const api::decode_result<api::response> decoded = api::decode_response(frame);
        ASSERT_TRUE(decoded.ok()) << (decoded.error ? decoded.error->message : "eof");
        EXPECT_EQ(api::tag_of(*decoded.value), api::tag_of(resp));
        EXPECT_EQ(api::correlation_id(*decoded.value), api::correlation_id(resp));
    }

    const auto br = std::get<api::building_response>(
        *api::decode_response(api::encode(api::response(api::building_response{21, report})))
             .value);
    expect_report_eq(br.report, report);

    const auto sr = std::get<api::stats_response>(
        *api::decode_response(api::encode(api::response(api::stats_response{22, stats}))).value);
    EXPECT_EQ(sr.stats.jobs_submitted, 4u);
    EXPECT_EQ(sr.stats.jobs_cancelled, 1u);
    EXPECT_EQ(sr.stats.cache_hits, 6u);
    EXPECT_EQ(sr.stats.cache_misses, 2u);
    EXPECT_EQ(sr.stats.latency_p90, 0.125);

    const auto er = std::get<api::error_response>(
        *api::decode_response(
             api::encode(api::response(api::error_response{25, api::error_code::bad_payload,
                                                           "odd bytes"})))
             .value);
    EXPECT_EQ(er.code, api::error_code::bad_payload);
    EXPECT_EQ(er.message, "odd bytes");
}

TEST(codec, ingestion_messages_round_trip) {
    // append_scans carries a whole batch of building records.
    api::append_scans_request ap;
    ap.correlation_id = 31;
    ap.corpus_name = "live \"city\"";
    ap.records = {tiny_building(1), tiny_building(2)};
    const auto ap2 = std::get<api::append_scans_request>(
        *api::decode_request(api::encode(api::request(ap))).value);
    EXPECT_EQ(ap2.correlation_id, 31u);
    EXPECT_EQ(ap2.corpus_name, ap.corpus_name);
    ASSERT_EQ(ap2.records.size(), 2u);
    expect_building_eq(ap2.records[0], ap.records[0]);
    expect_building_eq(ap2.records[1], ap.records[1]);

    for (const bool subscribe : {true, false}) {
        api::watch_request w;
        w.correlation_id = 32;
        w.name = "bldg-2";
        w.subscribe = subscribe;
        const auto w2 = std::get<api::watch_request>(
            *api::decode_request(api::encode(api::request(w))).value);
        EXPECT_EQ(w2.correlation_id, 32u);
        EXPECT_EQ(w2.name, "bldg-2");
        EXPECT_EQ(w2.subscribe, subscribe);
    }

    const auto ar = std::get<api::append_response>(
        *api::decode_response(api::encode(api::response(api::append_response{33, 5, 4, 3})))
             .value);
    EXPECT_EQ(ar.correlation_id, 33u);
    EXPECT_EQ(ar.version, 5u);
    EXPECT_EQ(ar.accepted, 4u);
    EXPECT_EQ(ar.dirty, 3u);

    const auto wa = std::get<api::watch_ack_response>(
        *api::decode_response(api::encode(api::response(api::watch_ack_response{34, true})))
             .value);
    EXPECT_EQ(wa.correlation_id, 34u);
    EXPECT_TRUE(wa.active);

    runtime::building_report report;
    report.index = 3;
    report.name = "bldg-2";
    report.ok = true;
    const auto pu = std::get<api::push_response>(
        *api::decode_response(api::encode(api::response(api::push_response{35, 6, report})))
             .value);
    EXPECT_EQ(pu.correlation_id, 35u);
    EXPECT_EQ(pu.version, 6u);
    EXPECT_EQ(pu.report.index, 3u);
    EXPECT_EQ(pu.report.name, "bldg-2");

    // The stats payload grew the three ingestion families.
    service::service_stats stats;
    stats.ingest_appends = 7;
    stats.ingest_dirty_buildings = 9;
    stats.watch_subscribers = 2;
    const auto sr = std::get<api::stats_response>(
        *api::decode_response(api::encode(api::response(api::stats_response{36, stats}))).value);
    EXPECT_EQ(sr.stats.ingest_appends, 7u);
    EXPECT_EQ(sr.stats.ingest_dirty_buildings, 9u);
    EXPECT_EQ(sr.stats.watch_subscribers, 2u);
}

TEST(codec, telemetry_messages_round_trip) {
    // Schema v4's live-telemetry verbs and the cache-bypass flags.
    for (const bool fresh : {true, false}) {
        api::identify_resident_request rr;
        rr.correlation_id = 50;
        rr.name = "bldg \"resident\"";
        rr.fresh = fresh;
        const auto rr2 = std::get<api::identify_resident_request>(
            *api::decode_request(api::encode(api::request(rr))).value);
        EXPECT_EQ(rr2.correlation_id, 50u);
        EXPECT_EQ(rr2.name, rr.name);
        EXPECT_EQ(rr2.fresh, fresh);
    }

    for (const bool no_cache : {true, false}) {
        api::identify_building_request ib;
        ib.correlation_id = 51;
        ib.has_index = true;
        ib.corpus_index = 4;
        ib.no_cache = no_cache;
        ib.b = tiny_building(1);
        const auto ib2 = std::get<api::identify_building_request>(
            *api::decode_request(api::encode(api::request(ib))).value);
        EXPECT_EQ(ib2.correlation_id, 51u);
        EXPECT_EQ(ib2.corpus_index, 4u);
        EXPECT_EQ(ib2.no_cache, no_cache);
        expect_building_eq(ib2.b, ib.b);
    }

    for (const bool subscribe : {true, false}) {
        api::subscribe_stats_request ss;
        ss.correlation_id = 52;
        ss.interval_ms = 250;
        ss.subscribe = subscribe;
        const auto ss2 = std::get<api::subscribe_stats_request>(
            *api::decode_request(api::encode(api::request(ss))).value);
        EXPECT_EQ(ss2.correlation_id, 52u);
        EXPECT_EQ(ss2.interval_ms, 250u);
        EXPECT_EQ(ss2.subscribe, subscribe);
    }

    api::stats_update_response u;
    u.correlation_id = 53;
    u.window_seq = 17;
    u.window_seconds = 0.25;
    u.connections = 3;
    u.inflight = 2;
    u.admitted = 40;
    u.responses = 38;
    u.shed_overload = 5;
    u.shed_draining = 1;
    u.latency_count = 36;
    u.latency_sum = 4.5;
    u.latency_p50 = 0.1;
    u.latency_p90 = 0.2;
    u.latency_p99 = 0.3;
    const auto u2 = std::get<api::stats_update_response>(
        *api::decode_response(api::encode(api::response(u))).value);
    EXPECT_EQ(u2.correlation_id, 53u);
    EXPECT_EQ(u2.window_seq, 17u);
    EXPECT_DOUBLE_EQ(u2.window_seconds, 0.25);
    EXPECT_EQ(u2.connections, 3u);
    EXPECT_EQ(u2.inflight, 2u);
    EXPECT_EQ(u2.admitted, 40u);
    EXPECT_EQ(u2.responses, 38u);
    EXPECT_EQ(u2.shed_overload, 5u);
    EXPECT_EQ(u2.shed_draining, 1u);
    EXPECT_EQ(u2.latency_count, 36u);
    EXPECT_DOUBLE_EQ(u2.latency_sum, 4.5);
    EXPECT_DOUBLE_EQ(u2.latency_p50, 0.1);
    EXPECT_DOUBLE_EQ(u2.latency_p90, 0.2);
    EXPECT_DOUBLE_EQ(u2.latency_p99, 0.3);

    // The stats payload grew the histogram exposition triplet.
    service::service_stats stats;
    stats.latency_count = 200;
    stats.latency_sum = 12.75;
    stats.latency_le = {1, 2, 3, 50, 200};
    const auto sr = std::get<api::stats_response>(
        *api::decode_response(api::encode(api::response(api::stats_response{54, stats}))).value);
    EXPECT_EQ(sr.stats.latency_count, 200u);
    EXPECT_DOUBLE_EQ(sr.stats.latency_sum, 12.75);
    EXPECT_EQ(sr.stats.latency_le, (std::vector<std::uint64_t>{1, 2, 3, 50, 200}));
}

TEST(codec, hostile_append_batch_count_fails_cleanly) {
    // An append_scans frame declaring 2^32-ish records with no bytes behind
    // them must answer a typed error without allocating the claimed batch.
    api::append_scans_request ap;
    ap.correlation_id = 40;
    ap.corpus_name = "x";
    ap.records = {tiny_building(1)};
    std::string frame = api::encode(api::request(ap));
    // Patch the record count (u64 after the corpus-name bytes:
    // header 14 + corr 8 + name_len 8 + name 1).
    const std::size_t count_off = 14 + 8 + 8 + 1;
    for (std::size_t i = 0; i < 8; ++i)
        frame[count_off + i] = static_cast<char>(i < 7 ? 0xFF : 0x7F);
    const api::decode_result<api::request> r = api::decode_request(frame);
    ASSERT_FALSE(r.ok());
    EXPECT_FALSE(r.fatal);  // recoverable: the connection survives
    EXPECT_EQ(r.error->code, api::error_code::bad_payload);
}

TEST(codec, degenerate_matrices_round_trip) {
    // R×0 / 0×C embeddings carry no payload bytes; the encoder legally
    // produces them and the decoder must take them back.
    for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{5, 0},
                                    std::pair<std::size_t, std::size_t>{0, 7},
                                    std::pair<std::size_t, std::size_t>{0, 0}}) {
        runtime::building_report report;
        report.name = "degenerate";
        report.result.embeddings = linalg::matrix(rows, cols);
        const api::decode_result<api::response> decoded = api::decode_response(
            api::encode(api::response(api::building_response{1, report})));
        ASSERT_TRUE(decoded.ok()) << rows << "x" << cols << ": "
                                  << decoded.error->message;
        const auto& back = std::get<api::building_response>(*decoded.value);
        EXPECT_EQ(back.report.result.embeddings.rows(), rows);
        EXPECT_EQ(back.report.result.embeddings.cols(), cols);
    }
}

TEST(codec, randomized_request_round_trip_property) {
    util::rng gen(4242);
    for (int round = 0; round < 50; ++round) {
        api::identify_building_request m;
        m.correlation_id = gen.uniform_index(1ULL << 30);
        m.has_index = gen.bernoulli(0.5);
        m.corpus_index = gen.uniform_index(1ULL << 20);
        m.b = random_building(gen);

        const std::string frame = api::encode(api::request(m));
        const api::decode_result<api::request> decoded = api::decode_request(frame);
        ASSERT_TRUE(decoded.ok()) << decoded.error->message;
        const auto& back = std::get<api::identify_building_request>(*decoded.value);
        EXPECT_EQ(back.correlation_id, m.correlation_id);
        EXPECT_EQ(back.has_index, m.has_index);
        EXPECT_EQ(back.corpus_index, m.corpus_index);
        expect_building_eq(back.b, m.b);

        // Canonical: re-encoding the decoded message reproduces the bytes.
        EXPECT_EQ(api::encode(api::request(back)), frame);
    }
}

// --- codec: adversarial decode ----------------------------------------------

TEST(codec, rejects_truncation_at_every_prefix_length) {
    api::identify_building_request m;
    m.correlation_id = 3;
    m.b = tiny_building(2);
    const std::string frame = api::encode(api::request(m));

    for (std::size_t cut = 1; cut < frame.size(); ++cut) {
        const api::decode_result<api::request> decoded =
            api::decode_request(std::string_view(frame).substr(0, cut));
        ASSERT_TRUE(decoded.error.has_value()) << "prefix " << cut << " decoded";
        EXPECT_EQ(decoded.error->code, api::error_code::truncated);
        EXPECT_TRUE(decoded.fatal);
    }
    EXPECT_TRUE(api::decode_request(std::string_view{}).eof);
}

TEST(codec, rejects_oversized_declared_length_without_allocating) {
    // Header declares a payload far beyond the bound; only 4 real bytes follow.
    std::string frame = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::get_stats), "abcd");
    // Patch the length field (offset 10, little-endian u32) to 256 MiB.
    const std::uint32_t huge = 256u << 20;
    std::memcpy(frame.data() + 10, &huge, sizeof huge);

    const api::decode_result<api::request> decoded = api::decode_request(frame);
    ASSERT_TRUE(decoded.error.has_value());
    EXPECT_EQ(decoded.error->code, api::error_code::oversized);
    EXPECT_TRUE(decoded.fatal);
}

TEST(codec, rejects_unknown_tag_as_recoverable) {
    const std::string payload(8, '\0');  // a plausible correlation id
    const std::string frame = api::make_frame(999, payload);
    std::size_t consumed = 0;
    const api::decode_result<api::request> decoded = api::decode_request(frame, &consumed);
    ASSERT_TRUE(decoded.error.has_value());
    EXPECT_EQ(decoded.error->code, api::error_code::unknown_tag);
    EXPECT_FALSE(decoded.fatal);
    EXPECT_EQ(consumed, frame.size());  // frame consumed: stream can resync

    // A response tag is not a request tag either.
    const std::string resp_frame = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::flush_done), payload);
    EXPECT_EQ(api::decode_request(resp_frame).error->code, api::error_code::unknown_tag);
}

TEST(codec, rejects_future_schema_version_as_recoverable) {
    const std::string payload(8, '\0');
    const std::string frame = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::flush), payload,
        api::k_schema_version + 1);
    const api::decode_result<api::request> decoded = api::decode_request(frame);
    ASSERT_TRUE(decoded.error.has_value());
    EXPECT_EQ(decoded.error->code, api::error_code::bad_version);
    EXPECT_FALSE(decoded.fatal);
}

TEST(codec, rejects_bad_magic_as_fatal) {
    const std::string frame = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::flush), std::string(8, '\0'),
        api::k_schema_version, "XIS1");
    const api::decode_result<api::request> decoded = api::decode_request(frame);
    ASSERT_TRUE(decoded.error.has_value());
    EXPECT_EQ(decoded.error->code, api::error_code::bad_magic);
    EXPECT_TRUE(decoded.fatal);
}

TEST(codec, rejects_empty_and_trailing_payloads) {
    // flush needs an 8-byte correlation id; an empty payload is malformed.
    const std::string empty = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::flush), "");
    const api::decode_result<api::request> short_decoded = api::decode_request(empty);
    ASSERT_TRUE(short_decoded.error.has_value());
    EXPECT_EQ(short_decoded.error->code, api::error_code::bad_payload);
    EXPECT_FALSE(short_decoded.fatal);

    // Ditto a payload with bytes left over after the message.
    const std::string trailing = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::flush), std::string(12, '\0'));
    const api::decode_result<api::request> trail_decoded = api::decode_request(trailing);
    ASSERT_TRUE(trail_decoded.error.has_value());
    EXPECT_EQ(trail_decoded.error->code, api::error_code::bad_payload);
}

TEST(codec, hostile_counts_inside_payload_fail_cleanly) {
    // An identify_building whose sample count claims 2^60 entries: the
    // count guard must fail the decode before any allocation attempt.
    std::string payload;
    const auto put_u64 = [&payload](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) payload.push_back(static_cast<char>(v >> (8 * i)));
    };
    put_u64(1);                  // correlation id
    payload.push_back('\0');     // has_index = false
    put_u64(0);                  // corpus_index
    put_u64(0);                  // name: empty
    put_u64(3);                  // num_floors
    put_u64(4);                  // num_macs
    put_u64(0);                  // labeled_sample
    payload.append(4, '\0');     // labeled_floor
    put_u64(1ULL << 60);         // hostile sample count
    const std::string frame = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::identify_building), payload);
    const api::decode_result<api::request> decoded = api::decode_request(frame);
    ASSERT_TRUE(decoded.error.has_value());
    EXPECT_EQ(decoded.error->code, api::error_code::bad_payload);
}

TEST(codec, stream_reader_recovers_after_recoverable_frames) {
    std::stringstream wire;
    wire << api::make_frame(999, std::string(8, '\0'));  // unknown tag
    wire << api::encode(api::request(api::flush_request{42}));

    const api::decode_result<api::request> first = api::read_request(wire);
    ASSERT_TRUE(first.error.has_value());
    EXPECT_EQ(first.error->code, api::error_code::unknown_tag);
    EXPECT_FALSE(first.fatal);

    const api::decode_result<api::request> second = api::read_request(wire);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(api::correlation_id(*second.value), 42u);

    EXPECT_TRUE(api::read_request(wire).eof);
}

TEST(codec, encode_rejects_payloads_the_protocol_cannot_carry) {
    // One sample with enough observations to push the payload past the
    // 64 MiB frame bound: encoding must throw instead of emitting a frame
    // the peer's decoder would fatally reject.
    api::identify_building_request m;
    m.correlation_id = 1;
    m.b.name = "oversized";
    m.b.num_floors = 2;
    m.b.num_macs = 1;
    data::rf_sample s;
    s.observations.resize((api::k_max_payload / 12) + 1, {0, -50.0});
    m.b.samples.push_back(std::move(s));
    EXPECT_THROW(static_cast<void>(api::encode(api::request(std::move(m)))),
                 std::length_error);
}

// --- result cache -----------------------------------------------------------

TEST(result_cache, lru_eviction_and_counters) {
    api::result_cache cache(2);
    runtime::building_report r;
    r.ok = true;

    const api::cache_key a{1, 10};
    const api::cache_key b{2, 10};
    const api::cache_key c{3, 10};

    EXPECT_FALSE(cache.lookup(a).has_value());  // miss
    cache.insert(a, r);
    cache.insert(b, r);
    EXPECT_TRUE(cache.lookup(a).has_value());  // hit; refreshes a
    cache.insert(c, r);                        // evicts b (LRU)
    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());
    EXPECT_FALSE(cache.lookup(b).has_value());

    const api::result_cache_stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 3u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 3u);  // counters survive clear

    EXPECT_THROW(api::result_cache(0), std::invalid_argument);
}

// --- server + client --------------------------------------------------------

TEST(api_server, loopback_identify_matches_batch_runner_bitwise) {
    const data::corpus c = tiny_corpus(3);

    runtime::batch_config batch_cfg;
    batch_cfg.pipeline = fast_pipeline();
    batch_cfg.seed = 99;
    batch_cfg.num_threads = 1;
    const runtime::batch_result batch = runtime::batch_runner(batch_cfg).run(c);

    api::server srv(fast_server_config(true));
    api::client cli(srv);
    for (const data::building& b : c.buildings) static_cast<void>(cli.identify(b));
    static_cast<void>(cli.flush());

    const std::vector<runtime::building_report> reports = cli.reports();
    ASSERT_EQ(reports.size(), 3u);
    std::vector<runtime::building_report> sorted = reports;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.index < b.index; });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        EXPECT_TRUE(sorted[i].ok) << sorted[i].error;
        EXPECT_EQ(sorted[i].seed, batch.reports[i].seed);
        EXPECT_EQ(sorted[i].result.assignment, batch.reports[i].result.assignment);
        EXPECT_EQ(sorted[i].result.embeddings, batch.reports[i].result.embeddings);
    }
}

TEST(api_server, stats_cancel_and_error_paths) {
    api::server srv(fast_server_config(true));
    api::client cli(srv);

    const std::uint64_t job_corr = cli.identify(tiny_building(0));
    static_cast<void>(cli.flush());

    // Cancelling a finished job is not accepted; an unknown id is not
    // accepted either (but answered, not erred).
    static_cast<void>(cli.cancel(job_corr));
    static_cast<void>(cli.cancel(777));
    static_cast<void>(cli.get_stats());

    const std::vector<api::response>& responses = cli.responses();
    std::size_t cancels = 0;
    for (const api::response& r : responses)
        if (const auto* cr = std::get_if<api::cancel_response>(&r)) {
            ++cancels;
            EXPECT_FALSE(cr->accepted);
        }
    EXPECT_EQ(cancels, 2u);

    const std::optional<service::service_stats> stats = cli.last_stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->buildings_ok, 1u);
    EXPECT_EQ(stats->cache_misses, 1u);
    EXPECT_EQ(stats->cache_hits, 0u);
    EXPECT_TRUE(cli.errors().empty());

    // A malformed frame through the loopback produces a typed error
    // response, and the session keeps serving afterwards.
    api::server::session session = srv.open([&](std::string_view) {});
    EXPECT_TRUE(session.handle_frame(api::make_frame(999, std::string(8, '\0'))));
    EXPECT_FALSE(session.handle_frame("FIS"));  // truncated header: fatal
}

TEST(api_server, shard_root_constrains_wire_supplied_paths) {
    // Write one real shard under a scratch root.
    const auto root = std::filesystem::temp_directory_path() / "fisone_api_shard_root";
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    const std::string shard_path = (root / "shard.csv").string();
    {
        data::shard_writer writer(shard_path);
        writer.append(tiny_building(0));
        writer.close();
    }

    api::server_config cfg = fast_server_config(false);
    cfg.shard_root = root.string();
    api::server srv(cfg);
    api::client cli(srv);

    // Inside the root: served normally.
    static_cast<void>(cli.identify_shard({shard_path, 0, 1}));
    static_cast<void>(cli.flush());
    ASSERT_EQ(cli.reports().size(), 1u);
    EXPECT_TRUE(cli.reports()[0].ok);
    EXPECT_TRUE(cli.errors().empty());

    // Outside the root (absolute path, and a dot-segment escape): a typed
    // bad_request error, never an attempted read.
    static_cast<void>(cli.identify_shard({"/etc/hostname", 0, 1}));
    static_cast<void>(cli.identify_shard({(root / ".." / "elsewhere.csv").string(), 0, 1}));
    static_cast<void>(cli.flush());
    const std::vector<api::error_response> errors = cli.errors();
    ASSERT_EQ(errors.size(), 2u);
    for (const api::error_response& e : errors)
        EXPECT_EQ(e.code, api::error_code::bad_request);
    EXPECT_EQ(cli.reports().size(), 1u);  // no reports for the rejected shards
}

TEST(api_server, warm_resubmission_hits_cache_and_stays_bit_identical) {
    const data::corpus c = tiny_corpus(3);
    api::server srv(fast_server_config(true));

    api::client cold(srv);
    for (std::size_t i = 0; i < c.buildings.size(); ++i)
        static_cast<void>(cold.identify(c.buildings[i], i));
    static_cast<void>(cold.flush());

    api::client warm(srv);
    for (std::size_t i = 0; i < c.buildings.size(); ++i)
        static_cast<void>(warm.identify(c.buildings[i], i));
    static_cast<void>(warm.flush());

    const api::result_cache_stats cache = srv.cache_stats();
    EXPECT_EQ(cache.misses, 3u);
    EXPECT_EQ(cache.hits, 3u);
    EXPECT_EQ(cache.entries, 3u);

    // The warm run never touched the service...
    EXPECT_EQ(srv.stats().buildings_done, 3u);
    // ...yet its responses are identical minus wall time.
    EXPECT_EQ(ndjson_of(cold.reports()), ndjson_of(warm.reports()));
}

// --- end-to-end determinism (the PR's acceptance criterion) -----------------

TEST(api_e2e, loopback_framed_and_direct_service_are_byte_identical) {
    const data::corpus city = tiny_corpus(32);

    // Path 1: direct floor_service submission (no API layer at all).
    service::service_config svc_cfg;
    svc_cfg.pipeline = fast_pipeline();
    svc_cfg.seed = 99;
    svc_cfg.num_threads = 2;
    std::vector<runtime::building_report> direct_reports;
    {
        service::floor_service svc(svc_cfg);
        std::vector<service::floor_service::job> jobs;
        for (const data::building& b : city.buildings) jobs.push_back(svc.submit(b));
        svc.wait_all();
        for (const auto& job : jobs)
            for (const auto& report : job.reports()) direct_reports.push_back(report);
    }
    const std::string direct = ndjson_of(std::move(direct_reports));

    // Path 2: in-process loopback through the API server, cache on —
    // twice, so the second pass is served entirely from the cache.
    api::server srv(fast_server_config(true));
    api::client loop_cold(srv);
    for (std::size_t i = 0; i < city.buildings.size(); ++i)
        static_cast<void>(loop_cold.identify(city.buildings[i], i));
    static_cast<void>(loop_cold.flush());
    api::client loop_warm(srv);
    for (std::size_t i = 0; i < city.buildings.size(); ++i)
        static_cast<void>(loop_warm.identify(city.buildings[i], i));
    static_cast<void>(loop_warm.flush());
    EXPECT_EQ(srv.cache_stats().hits, city.buildings.size());

    // Path 3: the framed-stream transport, cache off.
    std::stringstream wire_in, wire_out;
    api::client framed(static_cast<std::ostream&>(wire_in));
    for (std::size_t i = 0; i < city.buildings.size(); ++i)
        static_cast<void>(framed.identify(city.buildings[i], i));
    static_cast<void>(framed.flush());
    {
        api::server framed_srv(fast_server_config(false));
        framed_srv.serve(wire_in, wire_out);
    }
    static_cast<void>(framed.ingest(wire_out));
    EXPECT_TRUE(framed.errors().empty());

    const std::string loopback_cold = ndjson_of(loop_cold.reports());
    const std::string loopback_warm = ndjson_of(loop_warm.reports());
    const std::string framed_ndjson = ndjson_of(framed.reports());

    EXPECT_EQ(loopback_cold, direct) << "loopback diverged from direct service";
    EXPECT_EQ(loopback_warm, direct) << "cache-served rerun diverged";
    EXPECT_EQ(framed_ndjson, direct) << "framed transport diverged";
}

// --- typed fault-tolerance error codes ---------------------------------------

TEST(codec, fault_tolerance_error_codes_round_trip_canonically) {
    for (const api::error_code code :
         {api::error_code::backend_unavailable, api::error_code::deadline_exceeded}) {
        const api::response resp(api::error_response{31, code, "fleet trouble"});
        const std::string frame = api::encode(resp);
        const api::decode_result<api::response> decoded = api::decode_response(frame);
        ASSERT_TRUE(decoded.ok()) << (decoded.error ? decoded.error->message : "eof");
        const auto& er = std::get<api::error_response>(*decoded.value);
        EXPECT_EQ(er.code, code);
        EXPECT_EQ(er.correlation_id, 31u);
        EXPECT_EQ(er.message, "fleet trouble");
        // Canonical: re-encoding the decoded message reproduces the bytes.
        EXPECT_EQ(api::encode(api::response(er)), frame);
    }
    EXPECT_STREQ(api::error_code_name(api::error_code::backend_unavailable),
                 "backend_unavailable");
    EXPECT_STREQ(api::error_code_name(api::error_code::deadline_exceeded),
                 "deadline_exceeded");
}

TEST(codec, adversarial_error_frames_fail_cleanly) {
    // Payload too short for correlation id + code: recoverable bad_payload
    // with the whole frame consumed, so the stream can resynchronise.
    const std::string short_frame = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::error), std::string(9, '\0'));
    std::size_t consumed = 0;
    const api::decode_result<api::response> short_decoded =
        api::decode_response(short_frame, &consumed);
    ASSERT_TRUE(short_decoded.error.has_value());
    EXPECT_EQ(short_decoded.error->code, api::error_code::bad_payload);
    EXPECT_FALSE(short_decoded.fatal);
    EXPECT_EQ(consumed, short_frame.size());

    // A well-formed error frame with trailing junk bytes: also bad_payload.
    const std::string good = api::encode(api::response(
        api::error_response{7, api::error_code::deadline_exceeded, "late"}));
    const std::string padded = api::make_frame(
        static_cast<std::uint16_t>(api::message_tag::error),
        good.substr(api::k_frame_header_size) + '\xff');
    const api::decode_result<api::response> padded_decoded = api::decode_response(padded);
    ASSERT_TRUE(padded_decoded.error.has_value());
    EXPECT_EQ(padded_decoded.error->code, api::error_code::bad_payload);
    EXPECT_FALSE(padded_decoded.fatal);
}

// --- persistent result-cache spill --------------------------------------------

TEST(result_cache, spill_persists_and_warm_loads_only_its_shard) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "fisone_cache_spill";
    fs::remove_all(dir);

    runtime::building_report r;
    r.ok = true;
    r.name = "spilled";
    {
        api::result_cache cache(8, api::cache_spill_config{dir.string(), 1, 0});
        EXPECT_EQ(cache.stats().warm_loaded, 0u);
        for (const std::uint64_t h : {2u, 3u, 4u, 5u}) cache.insert({h, 77}, r);
    }
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        EXPECT_EQ(entry.path().extension(), ".rc") << entry.path();
        ++files;
    }
    EXPECT_EQ(files, 4u);

    // A single-shard restart reloads everything, entries included.
    {
        api::result_cache cache(8, api::cache_spill_config{dir.string(), 1, 0});
        EXPECT_EQ(cache.stats().warm_loaded, 4u);
        EXPECT_EQ(cache.stats().entries, 4u);
        const auto hit = cache.lookup({2, 77});
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->name, "spilled");
        EXPECT_FALSE(cache.lookup({2, 78}).has_value());  // fingerprint is part of the key
    }
    // Two fleet members sharing the directory each load only their own
    // affinity shard (content_hash mod shard_count) — least data necessary.
    {
        api::result_cache shard0(8, api::cache_spill_config{dir.string(), 2, 0});
        api::result_cache shard1(8, api::cache_spill_config{dir.string(), 2, 1});
        EXPECT_EQ(shard0.stats().warm_loaded, 2u);  // hashes 2 and 4
        EXPECT_EQ(shard1.stats().warm_loaded, 2u);  // hashes 3 and 5
        EXPECT_TRUE(shard0.lookup({4, 77}).has_value());
        EXPECT_FALSE(shard0.lookup({3, 77}).has_value());
        EXPECT_TRUE(shard1.lookup({3, 77}).has_value());
    }
    fs::remove_all(dir);
}

TEST(result_cache, warm_load_sweeps_temps_and_deletes_corrupt_entries) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "fisone_cache_spill_hostile";
    fs::remove_all(dir);

    runtime::building_report r;
    r.ok = true;
    {
        api::result_cache cache(4, api::cache_spill_config{dir.string(), 1, 0});
        cache.insert({1, 9}, r);
    }
    // A torn temp from a crashed writer, a corrupt entry, a foreign file.
    std::ofstream(dir / "0000000000000002-0000000000000009.rc.0-17.tmp") << "torn";
    std::ofstream(dir / "0000000000000003-0000000000000009.rc") << "not a frame";
    std::ofstream(dir / "README.txt") << "unrelated";

    api::result_cache cache(4, api::cache_spill_config{dir.string(), 1, 0});
    EXPECT_EQ(cache.stats().warm_loaded, 1u);
    EXPECT_TRUE(cache.lookup({1, 9}).has_value());
    EXPECT_FALSE(fs::exists(dir / "0000000000000003-0000000000000009.rc"));  // corrupt: gone
    EXPECT_TRUE(fs::exists(dir / "README.txt"));  // foreign files are left alone
    for (const auto& entry : fs::directory_iterator(dir))
        EXPECT_NE(entry.path().extension(), ".tmp") << "temp survived the sweep";
    fs::remove_all(dir);

    EXPECT_THROW(api::result_cache(4, api::cache_spill_config{dir.string(), 0, 0}),
                 std::invalid_argument);
    EXPECT_THROW(api::result_cache(4, api::cache_spill_config{dir.string(), 2, 2}),
                 std::invalid_argument);
}

TEST(api_server, warm_restart_reloads_spilled_cache_bit_identically) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "fisone_server_spill";
    fs::remove_all(dir);
    const data::corpus c = tiny_corpus(2);

    api::server_config cfg = fast_server_config(true);
    cfg.cache_spill = api::cache_spill_config{dir.string(), 1, 0};

    std::string cold;
    {
        api::server srv(cfg);
        api::client cli(srv);
        for (std::size_t i = 0; i < c.buildings.size(); ++i)
            static_cast<void>(cli.identify(c.buildings[i], i));
        static_cast<void>(cli.flush());
        cold = ndjson_of(cli.reports());
    }

    // A fresh server over the same directory: the whole campaign is served
    // from the warm-loaded cache without touching the service.
    api::server srv(cfg);
    EXPECT_EQ(srv.cache_stats().warm_loaded, 2u);
    api::client cli(srv);
    for (std::size_t i = 0; i < c.buildings.size(); ++i)
        static_cast<void>(cli.identify(c.buildings[i], i));
    static_cast<void>(cli.flush());
    EXPECT_EQ(srv.cache_stats().hits, 2u);
    EXPECT_EQ(srv.stats().buildings_done, 0u);
    EXPECT_EQ(ndjson_of(cli.reports()), cold);
    fs::remove_all(dir);
}

}  // namespace
