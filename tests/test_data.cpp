// Tests for src/data: model validation, MAC interning, CSV round-trip,
// dense matrix view.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "data/corpus_store.hpp"
#include "data/dataset_io.hpp"
#include "data/rf_sample.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone::data;

building small_building() {
    building b;
    b.name = "unit";
    b.num_floors = 2;
    b.num_macs = 3;
    b.samples.push_back({{{0, -40.5}, {1, -60.0}}, 0, 3});
    b.samples.push_back({{{2, -70.0}}, 1, 4});
    b.samples.push_back({{{1, -55.0}, {2, -72.0}}, 1, 3});
    b.labeled_sample = 0;
    b.labeled_floor = 0;
    return b;
}

// ---------- mac_registry ----------

TEST(mac_registry, interning_round_trip) {
    mac_registry reg;
    const auto a = reg.id_of("aa:bb:cc:dd:ee:01");
    const auto b = reg.id_of("aa:bb:cc:dd:ee:02");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.id_of("aa:bb:cc:dd:ee:01"), a);  // stable
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name_of(a), "aa:bb:cc:dd:ee:01");
    EXPECT_EQ(reg.find("aa:bb:cc:dd:ee:02"), b);
    EXPECT_EQ(reg.find("unknown"), mac_registry::npos);
    EXPECT_THROW((void)reg.name_of(99), std::out_of_range);
}

// ---------- validation ----------

TEST(building_validate, accepts_consistent_building) {
    EXPECT_NO_THROW(small_building().validate());
}

TEST(building_validate, rejects_inconsistencies) {
    building b = small_building();
    b.num_floors = 1;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples.clear();
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.labeled_sample = 99;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.labeled_floor = 5;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.labeled_sample = 1;  // that sample is on floor 1, label says 0
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[0].observations[0].mac_id = 77;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[0].observations[0].rss_dbm = 10.0;  // positive RSS
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[1].true_floor = 9;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[1].observations.clear();
    EXPECT_THROW(b.validate(), std::invalid_argument);
}

TEST(building_stats, samples_per_floor) {
    const auto counts = small_building().samples_per_floor();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 2u);
}

// ---------- serialisation ----------

TEST(dataset_io, stream_round_trip) {
    const building original = small_building();
    std::stringstream ss;
    save_building(original, ss);
    const building loaded = load_building(ss);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.num_floors, original.num_floors);
    EXPECT_EQ(loaded.num_macs, original.num_macs);
    EXPECT_EQ(loaded.labeled_sample, original.labeled_sample);
    EXPECT_EQ(loaded.labeled_floor, original.labeled_floor);
    ASSERT_EQ(loaded.samples.size(), original.samples.size());
    for (std::size_t i = 0; i < loaded.samples.size(); ++i) {
        EXPECT_EQ(loaded.samples[i].true_floor, original.samples[i].true_floor);
        EXPECT_EQ(loaded.samples[i].device_id, original.samples[i].device_id);
        ASSERT_EQ(loaded.samples[i].observations.size(),
                  original.samples[i].observations.size());
        for (std::size_t j = 0; j < loaded.samples[i].observations.size(); ++j) {
            EXPECT_EQ(loaded.samples[i].observations[j].mac_id,
                      original.samples[i].observations[j].mac_id);
            EXPECT_DOUBLE_EQ(loaded.samples[i].observations[j].rss_dbm,
                             original.samples[i].observations[j].rss_dbm);
        }
    }
}

TEST(dataset_io, file_round_trip) {
    const building original = small_building();
    const std::string path = "/tmp/fisone_test_building.csv";
    save_building_file(original, path);
    const building loaded = load_building_file(path);
    EXPECT_EQ(loaded.samples.size(), original.samples.size());
    std::remove(path.c_str());
    EXPECT_THROW((void)load_building_file("/nonexistent/nope.csv"), std::ios_base::failure);
}

TEST(dataset_io, rejects_malformed_input) {
    std::stringstream bad_magic("not a building\n");
    EXPECT_THROW((void)load_building(bad_magic), std::invalid_argument);

    std::stringstream bad_row("# fisone-building v1\nbogus,1\n");
    EXPECT_THROW((void)load_building(bad_row), std::invalid_argument);

    std::stringstream bad_obs(
        "# fisone-building v1\nname,x\nfloors,2\nmacs,1\nlabeled_sample,0\n"
        "labeled_floor,0\nsample,0,0,0;-40\n");
    EXPECT_THROW((void)load_building(bad_obs), std::invalid_argument);
}

TEST(corpus_manifest, rejects_duplicate_building_ids_naming_the_shard_file) {
    // A shard file listed twice mounts its building ids under two corpus
    // index ranges — before this check the duplicate silently shadowed.
    std::stringstream dup_shard(
        "# fisone-corpus v1\n"
        "corpus,city\n"
        "shard,shard-0000.csv,0,2\n"
        "shard,shard-0000.csv,2,2\n");
    try {
        (void)load_manifest(dup_shard);
        FAIL() << "duplicate shard row must be rejected";
    } catch (const std::invalid_argument& e) {
        // The error must point at the offending shard file.
        EXPECT_NE(std::string(e.what()).find("shard-0000.csv"), std::string::npos) << e.what();
    }

    // Same rule at write time: an in-memory manifest never serialises
    // a duplicate for a future load to trip over.
    corpus_manifest m;
    m.corpus_name = "city";
    m.shards.push_back({"a.csv", 0, 1});
    m.shards.push_back({"a.csv", 1, 1});
    EXPECT_THROW(m.validate(), std::invalid_argument);

    // A second corpus row would silently shadow the first name.
    std::stringstream dup_corpus(
        "# fisone-corpus v1\n"
        "corpus,one\n"
        "corpus,two\n"
        "shard,shard-0000.csv,0,2\n");
    EXPECT_THROW((void)load_manifest(dup_corpus), std::invalid_argument);

    // Distinct files at distinct ranges stay accepted.
    std::stringstream ok(
        "# fisone-corpus v1\n"
        "corpus,city\n"
        "shard,shard-0000.csv,0,2\n"
        "shard,shard-0001.csv,2,2\n");
    EXPECT_EQ(load_manifest(ok).total_buildings(), 4u);
}

TEST(dataset_io, rejects_truncated_header) {
    // File ends mid-header: the magic parsed but no samples ever arrived.
    std::stringstream no_samples("# fisone-building v1\nname,x\nfloors,2\n");
    EXPECT_THROW((void)load_building(no_samples), std::invalid_argument);

    // Truncated magic line itself.
    std::stringstream cut_magic("# fisone-build");
    EXPECT_THROW((void)load_building(cut_magic), std::invalid_argument);

    // Empty stream.
    std::stringstream empty;
    EXPECT_THROW((void)load_building(empty), std::invalid_argument);
}

TEST(dataset_io, rejects_macs_count_mismatch) {
    // Header claims 1 MAC; a sample references mac_id 2.
    std::stringstream mismatch(
        "# fisone-building v1\nname,x\nfloors,2\nmacs,1\nlabeled_sample,0\n"
        "labeled_floor,0\nsample,0,0,0:-40\nsample,1,0,2:-60\n");
    EXPECT_THROW((void)load_building(mismatch), std::invalid_argument);
}

TEST(dataset_io, rejects_out_of_range_labeled_sample) {
    // labeled_sample points past the two samples present.
    std::stringstream bad_label(
        "# fisone-building v1\nname,x\nfloors,2\nmacs,1\nlabeled_sample,7\n"
        "labeled_floor,0\nsample,0,0,0:-40\nsample,1,0,0:-60\n");
    EXPECT_THROW((void)load_building(bad_label), std::invalid_argument);
}

TEST(dataset_io, generated_building_round_trips_exactly) {
    fisone::sim::building_spec spec;
    spec.name = "roundtrip";
    spec.num_floors = 4;
    spec.samples_per_floor = 25;
    spec.aps_per_floor = 8;
    spec.seed = 1234;
    const building original = fisone::sim::generate_building(spec).building;

    std::stringstream ss;
    save_building(original, ss);
    const building loaded = load_building(ss);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.num_floors, original.num_floors);
    EXPECT_EQ(loaded.num_macs, original.num_macs);
    EXPECT_EQ(loaded.labeled_sample, original.labeled_sample);
    EXPECT_EQ(loaded.labeled_floor, original.labeled_floor);
    ASSERT_EQ(loaded.samples.size(), original.samples.size());
    for (std::size_t i = 0; i < loaded.samples.size(); ++i) {
        EXPECT_EQ(loaded.samples[i].true_floor, original.samples[i].true_floor);
        EXPECT_EQ(loaded.samples[i].device_id, original.samples[i].device_id);
        ASSERT_EQ(loaded.samples[i].observations.size(),
                  original.samples[i].observations.size());
        for (std::size_t j = 0; j < loaded.samples[i].observations.size(); ++j) {
            EXPECT_EQ(loaded.samples[i].observations[j].mac_id,
                      original.samples[i].observations[j].mac_id);
            // RSS values survive the text round-trip bit-exactly: the writer
            // emits shortest-round-trip text (std::to_chars), which is what
            // keeps a sharded corpus bit-identical to its in-memory source.
            EXPECT_EQ(loaded.samples[i].observations[j].rss_dbm,
                      original.samples[i].observations[j].rss_dbm);
        }
    }
}

// ---------- live ingestion: delta shards + manifest versioning ----------

TEST(corpus_manifest, version_and_delta_rows_round_trip) {
    corpus_manifest m;
    m.corpus_name = "city";
    m.shards.push_back({"shard-0000.csv", 0, 2});
    m.shards.push_back({"shard-0001.csv", 2, 1});
    m.version = 2;
    m.deltas.push_back({"delta-0001.csv", 1});
    m.deltas.push_back({"delta-0002.csv", 3});

    std::stringstream ss;
    save_manifest(m, ss);
    const corpus_manifest loaded = load_manifest(ss);
    EXPECT_EQ(loaded.corpus_name, "city");
    EXPECT_EQ(loaded.version, 2u);
    ASSERT_EQ(loaded.deltas.size(), 2u);
    EXPECT_EQ(loaded.deltas[0].filename, "delta-0001.csv");
    EXPECT_EQ(loaded.deltas[0].num_records, 1u);
    EXPECT_EQ(loaded.deltas[1].filename, "delta-0002.csv");
    EXPECT_EQ(loaded.deltas[1].num_records, 3u);
    EXPECT_EQ(loaded.total_buildings(), 3u);
}

TEST(corpus_manifest, write_once_store_keeps_version_zero_format) {
    // A version-0 manifest serialises without a version row — byte-stable
    // with pre-ingestion stores, so old fixtures keep loading.
    corpus_manifest m;
    m.corpus_name = "city";
    m.shards.push_back({"shard-0000.csv", 0, 2});
    std::stringstream ss;
    save_manifest(m, ss);
    EXPECT_EQ(ss.str().find("version"), std::string::npos) << ss.str();
    EXPECT_EQ(load_manifest(ss).version, 0u);
}

TEST(corpus_manifest, rejects_torn_version_delta_disagreement) {
    corpus_manifest m;
    m.corpus_name = "city";
    m.shards.push_back({"shard-0000.csv", 0, 2});

    // Version claims more appends than the delta rows list — torn.
    m.version = 2;
    m.deltas.push_back({"delta-0001.csv", 1});
    EXPECT_THROW(m.validate(), std::invalid_argument);

    // Delta rows without the version bump — equally torn.
    m.version = 0;
    EXPECT_THROW(m.validate(), std::invalid_argument);

    // An empty delta batch can never have been appended.
    m.version = 2;
    m.deltas.push_back({"delta-0002.csv", 0});
    EXPECT_THROW(m.validate(), std::invalid_argument);

    // A delta file colliding with a shard file would serve double content.
    m.deltas[1] = {"shard-0000.csv", 1};
    EXPECT_THROW(m.validate(), std::invalid_argument);

    // And the consistent shape passes.
    m.deltas[1] = {"delta-0002.csv", 1};
    EXPECT_NO_THROW(m.validate());
}

TEST(apply_delta_record, folds_scans_and_keeps_the_label_protocol) {
    building base = small_building();
    building record;
    record.name = "unit";
    record.num_floors = 3;  // the new scans reach a floor the base never saw
    record.num_macs = 4;
    record.samples.push_back({{{3, -48.0}}, 2, 9});
    record.samples.push_back({{{0, -51.0}}, 0, 9});
    record.labeled_sample = 0;  // a record's label must NOT replace the base's
    record.labeled_floor = 2;

    apply_delta_record(base, record);
    EXPECT_EQ(base.num_floors, 3u);
    EXPECT_EQ(base.num_macs, 4u);
    ASSERT_EQ(base.samples.size(), 5u);
    EXPECT_EQ(base.samples[3].true_floor, 2u);
    EXPECT_EQ(base.samples[4].observations[0].mac_id, 0u);
    EXPECT_EQ(base.labeled_sample, 0u);  // untouched
    EXPECT_EQ(base.labeled_floor, 0u);

    building stranger = small_building();
    stranger.name = "other";
    EXPECT_THROW(apply_delta_record(base, stranger), std::invalid_argument);
}

TEST(apply_delta_record, changes_the_content_hash) {
    // Dirty detection rides content_hash: folding new scans in must move it.
    building base = small_building();
    const std::uint64_t before = content_hash(base);
    building record;
    record.name = base.name;
    record.num_floors = base.num_floors;
    record.num_macs = base.num_macs;
    record.samples.push_back({{{1, -44.0}}, 1, 9});
    apply_delta_record(base, record);
    EXPECT_NE(content_hash(base), before);
}

namespace fs_test {

/// Tiny on-disk store fixture under /tmp, removed on destruction.
struct scoped_store {
    std::string dir;
    explicit scoped_store(const std::string& stem) {
        dir = "/tmp/" + stem + "-" + std::to_string(::getpid());
        std::filesystem::remove_all(dir);
    }
    ~scoped_store() {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

building named_building(const std::string& name, std::uint64_t seed) {
    fisone::sim::building_spec spec;
    spec.name = name;
    spec.num_floors = 2;
    spec.samples_per_floor = 6;
    spec.aps_per_floor = 4;
    spec.seed = seed;
    return fisone::sim::generate_building(spec).building;
}

}  // namespace fs_test

TEST(corpus_store, effective_view_merges_deltas_and_appends_new_buildings) {
    fs_test::scoped_store s("fisone-effective");
    corpus base;
    base.name = "city";
    base.buildings = {fs_test::named_building("a", 1), fs_test::named_building("b", 2)};
    write_corpus_store(base, s.dir, 1);

    // Hand-write one delta batch: new scans for "b" plus a new building "c"
    // (the data layer's contract; `ingest::append_scans` automates this).
    building touch;
    touch.name = "b";
    touch.num_floors = 2;
    touch.num_macs = 1;
    touch.samples.push_back({{{0, -42.0}}, 0, 9});
    touch.samples.push_back({{{0, -58.0}}, 1, 9});
    touch.labeled_sample = 0;
    touch.labeled_floor = 0;
    const building fresh = fs_test::named_building("c", 3);
    {
        shard_writer w(s.dir + "/delta-0001.csv");
        w.append(touch);
        w.append(fresh);
        w.close();
        corpus_manifest m = corpus_store::open(s.dir).manifest();
        m.version = 1;
        m.deltas.push_back({"delta-0001.csv", 2});
        std::ofstream f(manifest_path(s.dir), std::ios::trunc);
        save_manifest(m, f);
        f.close();
        ASSERT_TRUE(f.good());
    }

    const corpus_store store = corpus_store::open(s.dir);
    EXPECT_EQ(store.manifest().version, 1u);

    // The base view is untouched; the effective view folds the delta in and
    // appends "c" at the corpus tail.
    EXPECT_EQ(store.load_all().buildings.size(), 2u);
    std::vector<std::pair<std::size_t, std::string>> seen;
    store.for_each_building_effective([&](std::size_t index, building&& b) {
        seen.emplace_back(index, b.name);
        if (b.name == "b") {
            building merged = fs_test::named_building("b", 2);
            apply_delta_record(merged, touch);
            EXPECT_EQ(content_hash(b), content_hash(merged));
        }
        if (b.name == "a") {
            EXPECT_EQ(content_hash(b), content_hash(fs_test::named_building("a", 1)));
        }
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], (std::pair<std::size_t, std::string>{0, "a"}));
    EXPECT_EQ(seen[1], (std::pair<std::size_t, std::string>{1, "b"}));
    EXPECT_EQ(seen[2], (std::pair<std::size_t, std::string>{2, "c"}));

    const corpus effective = store.load_all_effective();
    ASSERT_EQ(effective.buildings.size(), 3u);
    EXPECT_EQ(effective.buildings[2].name, "c");
    EXPECT_EQ(content_hash(effective.buildings[2]), content_hash(fresh));
}

TEST(corpus_store, open_sweeps_leftover_manifest_tmp) {
    fs_test::scoped_store s("fisone-tmp-sweep");
    corpus base;
    base.name = "city";
    base.buildings = {fs_test::named_building("a", 1)};
    write_corpus_store(base, s.dir, 1);

    // A crash between writing manifest.csv.tmp and the rename leaves the
    // temp behind; by contract it was never visible, so the mount must
    // sweep it and serve the committed manifest.
    {
        std::ofstream junk(manifest_temp_path(s.dir));
        junk << "half a manifest";
    }
    ASSERT_TRUE(std::filesystem::exists(manifest_temp_path(s.dir)));
    const corpus_store store = corpus_store::open(s.dir);
    EXPECT_EQ(store.manifest().version, 0u);
    EXPECT_FALSE(std::filesystem::exists(manifest_temp_path(s.dir)));
}

// ---------- matrix view ----------

TEST(rss_matrix, fills_missing_and_keeps_strongest) {
    building b = small_building();
    b.samples[0].observations.push_back({0, -35.0});  // duplicate mac, stronger
    const auto m = to_rss_matrix(b, -120.0);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), -35.0);   // strongest duplicate wins
    EXPECT_DOUBLE_EQ(m(0, 1), -60.0);
    EXPECT_DOUBLE_EQ(m(0, 2), -120.0);  // missing
    EXPECT_DOUBLE_EQ(m(1, 2), -70.0);
}

TEST(rss_matrix, custom_fill_value) {
    const auto m = to_rss_matrix(small_building(), -100.0);
    EXPECT_DOUBLE_EQ(m(0, 2), -100.0);
}

}  // namespace
