// Tests for src/data: model validation, MAC interning, CSV round-trip,
// dense matrix view.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/corpus_store.hpp"
#include "data/dataset_io.hpp"
#include "data/rf_sample.hpp"
#include "sim/building_generator.hpp"

namespace {

using namespace fisone::data;

building small_building() {
    building b;
    b.name = "unit";
    b.num_floors = 2;
    b.num_macs = 3;
    b.samples.push_back({{{0, -40.5}, {1, -60.0}}, 0, 3});
    b.samples.push_back({{{2, -70.0}}, 1, 4});
    b.samples.push_back({{{1, -55.0}, {2, -72.0}}, 1, 3});
    b.labeled_sample = 0;
    b.labeled_floor = 0;
    return b;
}

// ---------- mac_registry ----------

TEST(mac_registry, interning_round_trip) {
    mac_registry reg;
    const auto a = reg.id_of("aa:bb:cc:dd:ee:01");
    const auto b = reg.id_of("aa:bb:cc:dd:ee:02");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.id_of("aa:bb:cc:dd:ee:01"), a);  // stable
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.name_of(a), "aa:bb:cc:dd:ee:01");
    EXPECT_EQ(reg.find("aa:bb:cc:dd:ee:02"), b);
    EXPECT_EQ(reg.find("unknown"), mac_registry::npos);
    EXPECT_THROW((void)reg.name_of(99), std::out_of_range);
}

// ---------- validation ----------

TEST(building_validate, accepts_consistent_building) {
    EXPECT_NO_THROW(small_building().validate());
}

TEST(building_validate, rejects_inconsistencies) {
    building b = small_building();
    b.num_floors = 1;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples.clear();
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.labeled_sample = 99;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.labeled_floor = 5;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.labeled_sample = 1;  // that sample is on floor 1, label says 0
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[0].observations[0].mac_id = 77;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[0].observations[0].rss_dbm = 10.0;  // positive RSS
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[1].true_floor = 9;
    EXPECT_THROW(b.validate(), std::invalid_argument);

    b = small_building();
    b.samples[1].observations.clear();
    EXPECT_THROW(b.validate(), std::invalid_argument);
}

TEST(building_stats, samples_per_floor) {
    const auto counts = small_building().samples_per_floor();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 2u);
}

// ---------- serialisation ----------

TEST(dataset_io, stream_round_trip) {
    const building original = small_building();
    std::stringstream ss;
    save_building(original, ss);
    const building loaded = load_building(ss);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.num_floors, original.num_floors);
    EXPECT_EQ(loaded.num_macs, original.num_macs);
    EXPECT_EQ(loaded.labeled_sample, original.labeled_sample);
    EXPECT_EQ(loaded.labeled_floor, original.labeled_floor);
    ASSERT_EQ(loaded.samples.size(), original.samples.size());
    for (std::size_t i = 0; i < loaded.samples.size(); ++i) {
        EXPECT_EQ(loaded.samples[i].true_floor, original.samples[i].true_floor);
        EXPECT_EQ(loaded.samples[i].device_id, original.samples[i].device_id);
        ASSERT_EQ(loaded.samples[i].observations.size(),
                  original.samples[i].observations.size());
        for (std::size_t j = 0; j < loaded.samples[i].observations.size(); ++j) {
            EXPECT_EQ(loaded.samples[i].observations[j].mac_id,
                      original.samples[i].observations[j].mac_id);
            EXPECT_DOUBLE_EQ(loaded.samples[i].observations[j].rss_dbm,
                             original.samples[i].observations[j].rss_dbm);
        }
    }
}

TEST(dataset_io, file_round_trip) {
    const building original = small_building();
    const std::string path = "/tmp/fisone_test_building.csv";
    save_building_file(original, path);
    const building loaded = load_building_file(path);
    EXPECT_EQ(loaded.samples.size(), original.samples.size());
    std::remove(path.c_str());
    EXPECT_THROW((void)load_building_file("/nonexistent/nope.csv"), std::ios_base::failure);
}

TEST(dataset_io, rejects_malformed_input) {
    std::stringstream bad_magic("not a building\n");
    EXPECT_THROW((void)load_building(bad_magic), std::invalid_argument);

    std::stringstream bad_row("# fisone-building v1\nbogus,1\n");
    EXPECT_THROW((void)load_building(bad_row), std::invalid_argument);

    std::stringstream bad_obs(
        "# fisone-building v1\nname,x\nfloors,2\nmacs,1\nlabeled_sample,0\n"
        "labeled_floor,0\nsample,0,0,0;-40\n");
    EXPECT_THROW((void)load_building(bad_obs), std::invalid_argument);
}

TEST(corpus_manifest, rejects_duplicate_building_ids_naming_the_shard_file) {
    // A shard file listed twice mounts its building ids under two corpus
    // index ranges — before this check the duplicate silently shadowed.
    std::stringstream dup_shard(
        "# fisone-corpus v1\n"
        "corpus,city\n"
        "shard,shard-0000.csv,0,2\n"
        "shard,shard-0000.csv,2,2\n");
    try {
        (void)load_manifest(dup_shard);
        FAIL() << "duplicate shard row must be rejected";
    } catch (const std::invalid_argument& e) {
        // The error must point at the offending shard file.
        EXPECT_NE(std::string(e.what()).find("shard-0000.csv"), std::string::npos) << e.what();
    }

    // Same rule at write time: an in-memory manifest never serialises
    // a duplicate for a future load to trip over.
    corpus_manifest m;
    m.corpus_name = "city";
    m.shards.push_back({"a.csv", 0, 1});
    m.shards.push_back({"a.csv", 1, 1});
    EXPECT_THROW(m.validate(), std::invalid_argument);

    // A second corpus row would silently shadow the first name.
    std::stringstream dup_corpus(
        "# fisone-corpus v1\n"
        "corpus,one\n"
        "corpus,two\n"
        "shard,shard-0000.csv,0,2\n");
    EXPECT_THROW((void)load_manifest(dup_corpus), std::invalid_argument);

    // Distinct files at distinct ranges stay accepted.
    std::stringstream ok(
        "# fisone-corpus v1\n"
        "corpus,city\n"
        "shard,shard-0000.csv,0,2\n"
        "shard,shard-0001.csv,2,2\n");
    EXPECT_EQ(load_manifest(ok).total_buildings(), 4u);
}

TEST(dataset_io, rejects_truncated_header) {
    // File ends mid-header: the magic parsed but no samples ever arrived.
    std::stringstream no_samples("# fisone-building v1\nname,x\nfloors,2\n");
    EXPECT_THROW((void)load_building(no_samples), std::invalid_argument);

    // Truncated magic line itself.
    std::stringstream cut_magic("# fisone-build");
    EXPECT_THROW((void)load_building(cut_magic), std::invalid_argument);

    // Empty stream.
    std::stringstream empty;
    EXPECT_THROW((void)load_building(empty), std::invalid_argument);
}

TEST(dataset_io, rejects_macs_count_mismatch) {
    // Header claims 1 MAC; a sample references mac_id 2.
    std::stringstream mismatch(
        "# fisone-building v1\nname,x\nfloors,2\nmacs,1\nlabeled_sample,0\n"
        "labeled_floor,0\nsample,0,0,0:-40\nsample,1,0,2:-60\n");
    EXPECT_THROW((void)load_building(mismatch), std::invalid_argument);
}

TEST(dataset_io, rejects_out_of_range_labeled_sample) {
    // labeled_sample points past the two samples present.
    std::stringstream bad_label(
        "# fisone-building v1\nname,x\nfloors,2\nmacs,1\nlabeled_sample,7\n"
        "labeled_floor,0\nsample,0,0,0:-40\nsample,1,0,0:-60\n");
    EXPECT_THROW((void)load_building(bad_label), std::invalid_argument);
}

TEST(dataset_io, generated_building_round_trips_exactly) {
    fisone::sim::building_spec spec;
    spec.name = "roundtrip";
    spec.num_floors = 4;
    spec.samples_per_floor = 25;
    spec.aps_per_floor = 8;
    spec.seed = 1234;
    const building original = fisone::sim::generate_building(spec).building;

    std::stringstream ss;
    save_building(original, ss);
    const building loaded = load_building(ss);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.num_floors, original.num_floors);
    EXPECT_EQ(loaded.num_macs, original.num_macs);
    EXPECT_EQ(loaded.labeled_sample, original.labeled_sample);
    EXPECT_EQ(loaded.labeled_floor, original.labeled_floor);
    ASSERT_EQ(loaded.samples.size(), original.samples.size());
    for (std::size_t i = 0; i < loaded.samples.size(); ++i) {
        EXPECT_EQ(loaded.samples[i].true_floor, original.samples[i].true_floor);
        EXPECT_EQ(loaded.samples[i].device_id, original.samples[i].device_id);
        ASSERT_EQ(loaded.samples[i].observations.size(),
                  original.samples[i].observations.size());
        for (std::size_t j = 0; j < loaded.samples[i].observations.size(); ++j) {
            EXPECT_EQ(loaded.samples[i].observations[j].mac_id,
                      original.samples[i].observations[j].mac_id);
            // RSS values survive the text round-trip bit-exactly: the writer
            // emits shortest-round-trip text (std::to_chars), which is what
            // keeps a sharded corpus bit-identical to its in-memory source.
            EXPECT_EQ(loaded.samples[i].observations[j].rss_dbm,
                      original.samples[i].observations[j].rss_dbm);
        }
    }
}

// ---------- matrix view ----------

TEST(rss_matrix, fills_missing_and_keeps_strongest) {
    building b = small_building();
    b.samples[0].observations.push_back({0, -35.0});  // duplicate mac, stronger
    const auto m = to_rss_matrix(b, -120.0);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), -35.0);   // strongest duplicate wins
    EXPECT_DOUBLE_EQ(m(0, 1), -60.0);
    EXPECT_DOUBLE_EQ(m(0, 2), -120.0);  // missing
    EXPECT_DOUBLE_EQ(m(1, 2), -70.0);
}

TEST(rss_matrix, custom_fill_value) {
    const auto m = to_rss_matrix(small_building(), -100.0);
    EXPECT_DOUBLE_EQ(m(0, 2), -100.0);
}

}  // namespace
