// Tests for src/eval: ARI, NMI, Jaro edit distance, sequence extraction.

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace {

using namespace fisone::eval;

// ---------- ARI ----------

TEST(ari, identical_partitions_score_one) {
    const std::vector<int> a{0, 0, 1, 1, 2, 2};
    EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(ari, invariant_to_label_renaming) {
    const std::vector<int> a{0, 0, 1, 1, 2, 2};
    const std::vector<int> b{5, 5, 9, 9, 7, 7};
    EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(ari, known_value_sklearn_example) {
    // sklearn doc example: ARI([0,0,1,1],[0,0,1,2]) = 0.571428...
    const std::vector<int> pred{0, 0, 1, 2};
    const std::vector<int> truth{0, 0, 1, 1};
    EXPECT_NEAR(adjusted_rand_index(pred, truth), 0.5714285714285714, 1e-12);
}

TEST(ari, random_labels_near_zero) {
    // A partition orthogonal to the truth should land near 0.
    const std::vector<int> truth{0, 0, 0, 0, 1, 1, 1, 1};
    const std::vector<int> pred{0, 1, 0, 1, 0, 1, 0, 1};
    EXPECT_NEAR(adjusted_rand_index(pred, truth), 0.0, 0.3);
}

TEST(ari, symmetric_in_arguments) {
    const std::vector<int> a{0, 0, 1, 1, 2, 2, 0};
    const std::vector<int> b{1, 1, 1, 0, 0, 2, 2};
    EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), adjusted_rand_index(b, a));
}

TEST(ari, rejects_bad_inputs) {
    EXPECT_THROW((void)adjusted_rand_index({0, 1}, {0}), std::invalid_argument);
    EXPECT_THROW((void)adjusted_rand_index({}, {}), std::invalid_argument);
}

// ---------- NMI ----------

TEST(nmi, identical_partitions_score_one) {
    const std::vector<int> a{0, 1, 2, 0, 1, 2};
    EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(nmi, independent_partitions_score_zero) {
    // Perfectly independent: each predicted cluster contains the same
    // mixture of truth labels.
    const std::vector<int> truth{0, 0, 1, 1};
    const std::vector<int> pred{0, 1, 0, 1};
    EXPECT_NEAR(normalized_mutual_information(pred, truth), 0.0, 1e-12);
}

TEST(nmi, in_unit_interval_and_symmetric) {
    const std::vector<int> a{0, 0, 1, 1, 2, 2, 1};
    const std::vector<int> b{0, 1, 1, 1, 2, 0, 2};
    const double ab = normalized_mutual_information(a, b);
    const double ba = normalized_mutual_information(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
}

TEST(nmi, known_value_half_split) {
    // pred merges truth's two clusters pairwise: H(X)=log2, H(Y)=log4,
    // MI = log2 → NMI = 2·log2/(log2+log4) = 2/3.
    const std::vector<int> truth{0, 0, 1, 1, 2, 2, 3, 3};
    const std::vector<int> pred{0, 0, 0, 0, 1, 1, 1, 1};
    EXPECT_NEAR(normalized_mutual_information(pred, truth), 2.0 / 3.0, 1e-12);
}

// ---------- Jaro ----------

TEST(jaro, identical_sequences) {
    const std::vector<int> s{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(jaro_similarity(s, s), 1.0);
}

TEST(jaro, paper_worked_example) {
    // Paper §V-A: SY = (1,2,3,4,5), SX = (1,4,3,2,5): one transposition,
    // m = 5, t = 1 → (1 + 1 + 4/5)/3 = 0.9333…
    const std::vector<int> sy{1, 2, 3, 4, 5};
    const std::vector<int> sx{1, 4, 3, 2, 5};
    EXPECT_NEAR(jaro_similarity(sx, sy), (1.0 + 1.0 + 0.8) / 3.0, 1e-12);
}

TEST(jaro, disjoint_sequences_zero) {
    EXPECT_DOUBLE_EQ(jaro_similarity({1, 2}, {3, 4}), 0.0);
}

TEST(jaro, empty_handling) {
    EXPECT_DOUBLE_EQ(jaro_similarity({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(jaro_similarity({1}, {}), 0.0);
}

TEST(jaro, partial_overlap) {
    // m=2 (values 1 and 2), t=0: (2/3 + 2/3 + 1)/3
    const std::vector<int> a{1, 2, 7};
    const std::vector<int> b{1, 2, 9};
    EXPECT_NEAR(jaro_similarity(a, b), (2.0 / 3.0 + 2.0 / 3.0 + 1.0) / 3.0, 1e-12);
}

TEST(jaro, bounded_window_restricts_matches) {
    // With the classic window, far-apart matches are dropped.
    const std::vector<int> sy{1, 2, 3, 4, 5};
    const std::vector<int> sx{1, 4, 3, 2, 5};
    const double bounded = jaro_similarity(sx, sy, true);
    const double unbounded = jaro_similarity(sx, sy, false);
    EXPECT_LT(bounded, unbounded);
}

// ---------- sequence extraction ----------

TEST(majority_floor, simple_majority) {
    const std::vector<int> assignment{0, 0, 0, 1, 1, 1};
    const std::vector<int> floors{2, 2, 1, 0, 0, 0};
    const auto majority = cluster_majority_floor(assignment, floors, 2);
    EXPECT_EQ(majority[0], 2);
    EXPECT_EQ(majority[1], 0);
}

TEST(majority_floor, skips_excluded_and_handles_empty) {
    const std::vector<int> assignment{-1, 0, 0};
    const std::vector<int> floors{5, 1, 1};
    const auto majority = cluster_majority_floor(assignment, floors, 2);
    EXPECT_EQ(majority[0], 1);
    EXPECT_EQ(majority[1], -1);  // empty cluster
}

TEST(edit_distance, perfect_indexing_scores_one) {
    // cluster c sits on true floor c and is predicted floor c
    const std::vector<int> cluster_to_floor{0, 1, 2, 3};
    const std::vector<int> majority{0, 1, 2, 3};
    EXPECT_DOUBLE_EQ(indexing_edit_distance(cluster_to_floor, majority), 1.0);
}

TEST(edit_distance, paper_example_via_extraction) {
    // Ground-truth floors 0..4 on clusters 0..4; prediction swaps the
    // clusters of floors 2 and 4 (1-based: 2↔4) → paper's 0.9333 case.
    const std::vector<int> majority{0, 1, 2, 3, 4};
    const std::vector<int> cluster_to_floor{0, 3, 2, 1, 4};
    EXPECT_NEAR(indexing_edit_distance(cluster_to_floor, majority), (1.0 + 1.0 + 0.8) / 3.0,
                1e-12);
}

TEST(edit_distance, reversed_order) {
    const std::vector<int> majority{0, 1, 2};
    const std::vector<int> cluster_to_floor{2, 1, 0};
    // m=3; matched sequences (3,2,1) vs (1,2,3): 2 mismatching → t=1
    EXPECT_NEAR(indexing_edit_distance(cluster_to_floor, majority),
                (1.0 + 1.0 + 2.0 / 3.0) / 3.0, 1e-12);
}

TEST(edit_distance, rejects_mismatched_sizes) {
    EXPECT_THROW((void)indexing_edit_distance({0, 1}, {0}), std::invalid_argument);
    EXPECT_THROW((void)indexing_edit_distance({}, {}), std::invalid_argument);
}

}  // namespace
