// Tests for the deployment-facing APIs: scan-log import (string MACs, the
// one-label protocol, unknown ground truth) and the online floor_predictor.

#include <gtest/gtest.h>

#include <sstream>

#include "core/floor_predictor.hpp"
#include "data/scan_log.hpp"
#include "sim/building_generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace fisone;

// ---------- scan log import ----------

constexpr const char* kLog = R"(# crowdsourced export
3,0,aa:bb:cc:00:00:01:-48,aa:bb:cc:00:00:02:-71
5,?,aa:bb:cc:00:00:02:-55,aa:bb:cc:00:00:03:-80
3,?,aa:bb:cc:00:00:01:-52.5,aa:bb:cc:00:00:03:-77
)";

TEST(scan_log, imports_macs_floors_and_label) {
    std::istringstream in(kLog);
    data::scan_log_options opts;
    opts.num_floors = 3;
    const auto imported = data::import_scan_log(in, opts);
    const data::building& b = imported.building_data;

    ASSERT_EQ(b.samples.size(), 3u);
    EXPECT_EQ(b.num_macs, 3u);
    EXPECT_EQ(imported.labeled_scans, 1u);
    EXPECT_EQ(b.labeled_sample, 0u);
    EXPECT_EQ(b.labeled_floor, 0);
    EXPECT_EQ(b.samples[1].true_floor, -1);  // unknown ground truth
    EXPECT_EQ(b.samples[0].device_id, 3u);

    // MAC strings with embedded colons survive round-trip through the registry.
    EXPECT_EQ(imported.registry.name_of(b.samples[0].observations[0].mac_id),
              "aa:bb:cc:00:00:01");
    EXPECT_DOUBLE_EQ(b.samples[2].observations[0].rss_dbm, -52.5);
}

TEST(scan_log, enforces_one_label_protocol) {
    data::scan_log_options opts;
    opts.num_floors = 2;

    std::istringstream none("1,?,m1:-50\n2,?,m2:-60\n");
    EXPECT_THROW((void)data::import_scan_log(none, opts), std::invalid_argument);

    std::istringstream two("1,0,m1:-50\n2,1,m2:-60\n");
    EXPECT_THROW((void)data::import_scan_log(two, opts), std::invalid_argument);

    opts.keep_extra_labels = true;
    std::istringstream two_again("1,0,m1:-50\n2,1,m2:-60\n");
    const auto imported = data::import_scan_log(two_again, opts);
    EXPECT_EQ(imported.labeled_scans, 2u);
    EXPECT_EQ(imported.building_data.labeled_floor, 0);  // first label anchors
}

TEST(scan_log, rejects_malformed_input) {
    data::scan_log_options opts;
    opts.num_floors = 2;
    std::istringstream bad_floor("1,9,m1:-50\n");
    EXPECT_THROW((void)data::import_scan_log(bad_floor, opts), std::invalid_argument);
    std::istringstream no_obs("1,0\n");
    EXPECT_THROW((void)data::import_scan_log(no_obs, opts), std::invalid_argument);
    std::istringstream bad_obs("1,0,m1-50\n");
    EXPECT_THROW((void)data::import_scan_log(bad_obs, opts), std::invalid_argument);
    std::istringstream empty("");
    EXPECT_THROW((void)data::import_scan_log(empty, opts), std::invalid_argument);
    data::scan_log_options zero = opts;
    zero.num_floors = 0;
    std::istringstream fine("1,0,m1:-50\n");
    EXPECT_THROW((void)data::import_scan_log(fine, zero), std::invalid_argument);
}

TEST(scan_log, unknown_truth_building_runs_through_pipeline) {
    // A mostly unlabeled building must still run end to end, reporting
    // has_ground_truth = false instead of fake metrics.
    sim::building_spec spec;
    spec.num_floors = 3;
    spec.samples_per_floor = 50;
    spec.seed = 77;
    auto b = sim::generate_building(spec).building;
    for (std::size_t i = 0; i < b.samples.size(); ++i)
        if (i != b.labeled_sample) b.samples[i].true_floor = -1;

    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 16;
    cfg.gnn.epochs = 3;
    const auto r = core::fis_one(cfg).run(b);
    EXPECT_FALSE(r.has_ground_truth);
    EXPECT_DOUBLE_EQ(r.ari, 0.0);
    // predictions still produced for every scan
    for (const int f : r.predicted_floor) EXPECT_GE(f, 0);
}

// ---------- floor predictor ----------

TEST(floor_predictor, fit_then_predict_roundtrip) {
    sim::building_spec spec;
    spec.num_floors = 4;
    spec.samples_per_floor = 100;
    spec.model.path_loss_exponent = 3.3;
    spec.floor_width_m = 60.0;
    spec.floor_depth_m = 40.0;
    spec.seed = 123;
    const auto b = sim::generate_building(spec).building;

    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 16;
    cfg.gnn.epochs = 8;
    cfg.gnn.seed = 123;
    cfg.seed = 123;
    core::floor_predictor predictor(cfg);
    EXPECT_FALSE(predictor.fitted());
    const auto offline = predictor.fit(b);
    EXPECT_TRUE(predictor.fitted());
    EXPECT_EQ(predictor.num_floors(), 4u);
    EXPECT_GT(offline.ari, 0.5);

    // Predict on perturbed copies of training scans: accuracy must be high
    // where the offline model itself is correct.
    util::rng gen(9);
    int agree = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        const std::size_t src = gen.uniform_index(b.samples.size());
        auto obs = b.samples[src].observations;
        for (auto& o : obs) o.rss_dbm = std::max(-110.0, o.rss_dbm + gen.normal(0.0, 1.0));
        const auto p = predictor.predict(obs);
        EXPECT_GE(p.floor, 0);
        EXPECT_LT(p.floor, 4);
        EXPECT_GT(p.confidence, 0.0);
        EXPECT_LE(p.confidence, 1.0);
        if (p.floor == offline.predicted_floor[src]) ++agree;
    }
    EXPECT_GE(agree, trials * 8 / 10);
}

TEST(floor_predictor, errors_before_fit_and_on_unknown_macs) {
    core::floor_predictor predictor;
    EXPECT_THROW((void)predictor.predict({{0, -50.0}}), std::logic_error);
    EXPECT_THROW((void)predictor.num_floors(), std::logic_error);
    EXPECT_THROW(core::floor_predictor(core::fis_one_config{}, 0), std::invalid_argument);

    sim::building_spec spec;
    spec.num_floors = 3;
    spec.samples_per_floor = 40;
    spec.seed = 5;
    const auto b = sim::generate_building(spec).building;
    core::fis_one_config cfg;
    cfg.gnn.embedding_dim = 8;
    cfg.gnn.epochs = 2;
    core::floor_predictor fitted(cfg);
    (void)fitted.fit(b);
    EXPECT_THROW((void)fitted.predict({{999999, -40.0}}), std::invalid_argument);
}

}  // namespace
