#!/usr/bin/env python3
"""Validate a fisone Chrome trace-event dump (the --trace-out / /dump_trace
output) without loading it into Perfetto.

Usage:  check_trace.py TRACE.json [--min-events N] [--require-span NAME ...]

Checks, in order:
  - the file parses as JSON and is an object;
  - `traceFormatVersion` is present and a version this checker understands
    (currently `fisone-trace/v1`);
  - `traceEvents` is a list of complete ("ph": "X") events, each carrying
    the keys Perfetto needs (name/ts/dur/pid/tid) with sane types and
    non-negative times, plus the fisone id args (trace/span/parent as hex
    strings);
  - every span name is in the KNOWN_SPANS registry (catches producer typos
    and instrumentation added without updating the tooling);
  - parent links resolve: every event whose `args.parent` is nonzero has
    some event in the same trace carrying that id as its `args.span`
    (skipped when `otherData.dropped` > 0 — a wrapped ring legitimately
    loses the oldest spans, parents included);
  - `otherData.recorded` matches the event count;
  - at least --min-events events (default 1) and every --require-span name
    is present.

Exit code 0 on a valid trace, 1 with a one-line reason otherwise — written
for CI (validate the smoke-test artifact before uploading it).
"""

import argparse
import json
import sys
from pathlib import Path

KNOWN_VERSIONS = ("fisone-trace/v1",)
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid", "args")
REQUIRED_ARG_KEYS = ("trace", "span", "parent")

# Every span name the instrumentation can emit. A name outside this registry
# fails the check: either the producer has a typo, or a new span was added
# without teaching the tooling about it — both are worth a red build. Keep in
# sync with the scoped_span / emit_span / emit_child_span literals in src/.
KNOWN_SPANS = frozenset({
    # net front door
    "net.accept", "net.read", "net.decode", "net.dispatch", "net.respond",
    "net.flush", "net.request",
    # federation fan-out and fault tolerance
    "federation.dispatch", "federation.route", "federation.retry",
    "federation.failover", "federation.resident_load",
    # API server
    "api.identify", "api.cache_probe",
    # live ingestion
    "ingest.append", "ingest.reindex", "net.push",
    # floor service
    "service.queue_wait", "service.execute", "service.report",
    # pipeline stages
    "pipeline.graph_build", "pipeline.gnn_embed", "pipeline.floor_count",
    "pipeline.cluster", "pipeline.index", "pipeline.export",
})


def fail(reason):
    print(f"check_trace: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def parse_hex_id(event, key):
    raw = event["args"].get(key)
    if not isinstance(raw, str) or not raw.startswith("0x"):
        fail(f"event {event.get('name')!r}: args.{key} is not a hex id string: {raw!r}")
    try:
        return int(raw, 16)
    except ValueError:
        fail(f"event {event.get('name')!r}: args.{key} is not parseable hex: {raw!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path)
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail unless at least this many events (default 1)")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME", help="fail unless a span with this name exists")
    args = parser.parse_args()

    try:
        doc = json.loads(args.trace.read_text())
    except OSError as e:
        fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{args.trace} is not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")

    version = doc.get("traceFormatVersion")
    if version not in KNOWN_VERSIONS:
        fail(f"unknown traceFormatVersion {version!r} (known: {', '.join(KNOWN_VERSIONS)})")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents is missing or not a list")

    # Pass 1: shape. Pass 2: parent links, which need the full span-id set.
    spans_by_trace = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                fail(f"traceEvents[{i}] is missing key {key!r}")
        if event["ph"] != "X":
            fail(f"traceEvents[{i}] has phase {event['ph']!r}, expected complete ('X')")
        if not isinstance(event["name"], str) or not event["name"]:
            fail(f"traceEvents[{i}] has a non-string or empty name")
        if event["name"] not in KNOWN_SPANS:
            fail(f"traceEvents[{i}] has unregistered span name {event['name']!r} "
                 f"(add it to KNOWN_SPANS if it is a new instrumentation point)")
        for key in ("ts", "dur"):
            if not isinstance(event[key], (int, float)) or event[key] < 0:
                fail(f"traceEvents[{i}] ({event['name']}): bad {key}: {event[key]!r}")
        if not isinstance(event["args"], dict):
            fail(f"traceEvents[{i}] ({event['name']}): args is not an object")
        for key in REQUIRED_ARG_KEYS:
            if key not in event["args"]:
                fail(f"traceEvents[{i}] ({event['name']}): args missing {key!r}")
        trace_id = parse_hex_id(event, "trace")
        span_id = parse_hex_id(event, "span")
        if trace_id == 0 or span_id == 0:
            fail(f"traceEvents[{i}] ({event['name']}): zero trace or span id")
        spans_by_trace.setdefault(trace_id, set()).add(span_id)

    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail("otherData is missing or not an object")
    recorded = other.get("recorded")
    if recorded != len(events):
        fail(f"otherData.recorded = {recorded!r} but traceEvents has {len(events)}")

    if not other.get("dropped"):
        for i, event in enumerate(events):
            trace_id = parse_hex_id(event, "trace")
            parent_id = parse_hex_id(event, "parent")
            if parent_id and parent_id not in spans_by_trace[trace_id]:
                fail(f"traceEvents[{i}] ({event['name']}): parent 0x{parent_id:x} "
                     f"not found in trace 0x{trace_id:x}")

    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected at least {args.min_events}")
    names = {event["name"] for event in events}
    for want in args.require_span:
        if want not in names:
            fail(f"required span {want!r} absent (saw: {', '.join(sorted(names))})")

    traces = len(spans_by_trace)
    print(f"check_trace: OK: {len(events)} events, {traces} trace(s), "
          f"{other.get('threads')} thread(s), {other.get('dropped')} dropped")


if __name__ == "__main__":
    main()
