#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json perf reports into a markdown table.

Usage:  bench_diff.py PREV_DIR CURR_DIR [--threshold PCT]

Pairs files by name, flattens numeric fields (nested objects become
dot.paths), and prints one markdown section per bench with previous value,
current value, and the relative delta — written for a CI job summary
($GITHUB_STEP_SUMMARY), so a perf regression is visible in the run page
without downloading artifacts. Noise-level deltas never gate (CI runners
are too jittery for hard perf thresholds), but *disappearance* does: a
bench file or a measured field that existed in the previous run and is
gone from the current one exits 1 — a family silently dropping out of the
reports is how perf coverage rots, and it is cheap to catch here.

Fields whose name suggests wall time or latency are marked so a reader can
tell "higher is worse" rows from throughput rows; nothing is auto-judged,
because CI runners are too noisy for hard perf gates (the |delta| >=
--threshold rows just get a marker).

The "capacity" section bench_capacity splices into BENCH_net.json (schema
fisone-bench-capacity/v1) is special-cased: its rung ladder has a
run-dependent length, so flattening it into dot.path fields would trip the
disappearance gate whenever the frontier shifts by a rung. It is rendered
as its own goodput/p99 frontier table instead, rungs paired by offered
rate; only the section vanishing outright gates.
"""

import argparse
import json
import sys
from pathlib import Path

LOWER_IS_BETTER = ("seconds", "_ms", "latency", "wall")
HIGHER_IS_BETTER = ("per_sec", "speedup", "throughput", "rate")


def flatten(obj, prefix=""):
    """Yield (dot.path, value) for every numeric leaf of a JSON object."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from flatten(value, f"{prefix}{key}." if prefix else f"{key}.")
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from flatten(value, f"{prefix}{i}.")
    elif isinstance(obj, bool):
        pass  # true/false toggles are config, not perf
    elif isinstance(obj, (int, float)):
        yield prefix.rstrip("."), float(obj)


def direction(field):
    if any(tok in field for tok in LOWER_IS_BETTER):
        return "lower-better"
    if any(tok in field for tok in HIGHER_IS_BETTER):
        return "higher-better"
    return ""


def fmt(value):
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def capacity_table(name, prev_cap, curr_cap):
    """Render the closed-loop capacity frontier as its own table.

    One row per offered rate (the union of both runs' ladders, since the
    explorer stops at the shed-threshold crossing and the crossing moves),
    goodput / shed rate / p99 side by side. Returns True when the section
    existed previously but is gone now — the only capacity condition that
    gates, mirroring the whole-file disappearance contract.
    """
    if curr_cap is None:
        if prev_cap is None:
            return False
        print(f"**MISSING: capacity section of {name} present in the previous run only.**\n")
        return True
    def by_rate(cap):
        return {r["offered_per_sec"]: r for r in (cap or {}).get("rungs", [])
                if isinstance(r, dict) and "offered_per_sec" in r}
    prev_rungs, curr_rungs = by_rate(prev_cap), by_rate(curr_cap)
    terminated = curr_cap.get("terminated", "?")
    print(f"#### capacity frontier ({name}) — terminated: {terminated}\n")
    print("| offered/s | goodput/s prev | goodput/s curr | shed prev | shed curr "
          "| p99 ms prev | p99 ms curr |")
    print("|---:|---:|---:|---:|---:|---:|---:|")
    def cell(rung, field, scale=1.0):
        if rung is None or field not in rung:
            return "—"
        return fmt(float(rung[field]) * scale)
    for rate in sorted(set(prev_rungs) | set(curr_rungs)):
        p, c = prev_rungs.get(rate), curr_rungs.get(rate)
        print(f"| {fmt(float(rate))} "
              f"| {cell(p, 'goodput_per_sec')} | {cell(c, 'goodput_per_sec')} "
              f"| {cell(p, 'shed_rate')} | {cell(c, 'shed_rate')} "
              f"| {cell(p, 'p99_ms')} | {cell(c, 'p99_ms')} |")
    print()
    return False


def diff_file(name, prev, curr, threshold):
    """Print one bench's table; return the fields present only previously."""
    # The capacity section's rung count varies run to run; pull it out for
    # the dedicated frontier renderer before flattening the rest.
    prev_cap = prev.pop("capacity", None) if isinstance(prev, dict) else None
    curr_cap = curr.pop("capacity", None) if isinstance(curr, dict) else None
    prev_fields = dict(flatten(prev))
    curr_fields = dict(flatten(curr))
    rows = []
    for field in sorted(set(prev_fields) | set(curr_fields)):
        p, c = prev_fields.get(field), curr_fields.get(field)
        if p is None or c is None:
            rows.append((field, p, c, None))
            continue
        # A zero baseline has no meaningful relative delta (a field that
        # just became nonzero would print "+inf%"); report it as unmarked.
        delta = (c - p) / abs(p) * 100.0 if p != 0 else (0.0 if c == 0 else None)
        rows.append((field, p, c, delta))

    print(f"### {name}\n")
    print("| field | previous | current | delta | |")
    print("|---|---:|---:|---:|---|")
    for field, p, c, delta in rows:
        if p is None:
            print(f"| {field} | — | {fmt(c)} | new | |")
            continue
        if c is None:
            print(f"| {field} | {fmt(p)} | — | gone | |")
            continue
        if delta is None:
            print(f"| {field} | {fmt(p)} | {fmt(c)} | n/a (was 0) | |")
            continue
        mark = ""
        if abs(delta) >= threshold:
            d = direction(field)
            if d == "lower-better":
                mark = "regressed" if delta > 0 else "improved"
            elif d == "higher-better":
                mark = "improved" if delta > 0 else "regressed"
            else:
                mark = "changed"
        print(f"| {field} | {fmt(p)} | {fmt(c)} | {delta:+.1f}% | {mark} |")
    print()
    gone = [field for field, p, c, _ in rows if c is None]
    if capacity_table(name, prev_cap, curr_cap):
        gone.append("capacity")
    return gone


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prev_dir", type=Path)
    parser.add_argument("curr_dir", type=Path)
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="mark rows whose |delta| meets this percent (default 10)")
    args = parser.parse_args()

    # Either directory may be missing outright — the first run of a new
    # bench has no previous artifact. That is routine and does not deserve
    # a stack trace; only reports that *were* there and vanished gate.
    prev_files = (
        {p.name: p for p in sorted(args.prev_dir.glob("BENCH_*.json"))}
        if args.prev_dir.is_dir() else {}
    )
    curr_files = (
        {p.name: p for p in sorted(args.curr_dir.glob("BENCH_*.json"))}
        if args.curr_dir.is_dir() else {}
    )
    if not args.prev_dir.is_dir():
        print(f"bench_diff: no previous dir {args.prev_dir} (first run?)", file=sys.stderr)
    if not curr_files:
        print(f"bench_diff: no BENCH_*.json under {args.curr_dir}", file=sys.stderr)
        print("_bench_diff: nothing to compare (no current bench reports)._")
        if prev_files:
            print(f"bench_diff: MISSING: all {len(prev_files)} previous bench report(s) "
                  "disappeared from the current run", file=sys.stderr)
            sys.exit(1)
        return

    print("## Bench comparison vs previous run\n")
    missing = []  # (bench, field-or-None) pairs that vanished since the previous run
    for name, curr_path in curr_files.items():
        try:
            curr = json.loads(curr_path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"_bench_diff: unreadable {name}: {e}_\n")
            continue
        prev_path = prev_files.get(name)
        if prev_path is None:
            print(f"### {name}\n\n_new bench — no previous report to compare._\n")
            if isinstance(curr, dict):
                capacity_table(name, None, curr.get("capacity"))
            continue
        try:
            prev = json.loads(prev_path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"_bench_diff: unreadable previous {name}: {e}_\n")
            continue
        missing.extend((name, field) for field in diff_file(name, prev, curr, args.threshold))
    for name in sorted(set(prev_files) - set(curr_files)):
        print(f"### {name}\n\n**MISSING: present in the previous run only.**\n")
        missing.append((name, None))

    if missing:
        for name, field in missing:
            what = f"field {field!r} of {name}" if field else f"bench report {name}"
            print(f"bench_diff: MISSING: {what} disappeared since the previous run",
                  file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
